//! Figure 13: per-benchmark behavior and region affinity — the execution
//! time and energy of a full OOO2 ExoCore, broken down by the unit that
//! ran each region, relative to the OOO2 core alone.

use prism_bench::{by_label, full_design_space, results_or_exit, run_worker_if_env};

fn main() {
    // Under the grid coordinator stdout is the wire protocol; re-enter as
    // a worker before printing anything.
    run_worker_if_env();
    let results = results_or_exit(full_design_space());
    let exo = by_label(&results, "OOO2-SDNT");
    let base = by_label(&results, "OOO2");

    println!("=== Fig. 13: per-benchmark OOO2-ExoCore breakdown (baseline = OOO2 alone) ===\n");
    println!(
        "{:<14} | {:>5} {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>5} | {:>6}",
        "benchmark",
        "GPP",
        "SIMD",
        "CGRA",
        "NSDF",
        "TrcP",
        "GPP",
        "SIMD",
        "CGRA",
        "NSDF",
        "TrcP",
        "spdup"
    );
    println!(
        "{:<14} | {:^29} | {:^29} |",
        "", "exec. time fraction", "energy fraction"
    );

    let mut unaccel_sum = 0.0;
    for m in &exo.per_workload {
        let b = base
            .per_workload
            .iter()
            .find(|x| x.workload == m.workload)
            .expect("baseline entry");
        let tcy: f64 = m.cycles.max(1) as f64;
        let ten: f64 = m.unit_energy.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        let tf: Vec<f64> = m.unit_cycles.iter().map(|&c| c as f64 / tcy).collect();
        let ef: Vec<f64> = m.unit_energy.iter().map(|&e| e / ten).collect();
        println!(
            "{:<14} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2}x",
            m.workload,
            tf[0], tf[1], tf[2], tf[3], tf[4],
            ef[0], ef[1], ef[2], ef[3], ef[4],
            b.cycles as f64 / m.cycles.max(1) as f64,
        );
        unaccel_sum += m.unaccelerated;
    }
    let n = exo.per_workload.len() as f64;
    println!(
        "\naverage unaccelerated instruction fraction: {:.0}% (paper: 16%)",
        100.0 * unaccel_sum / n
    );

    // Multi-BSA usage inside single applications (the cjpeg observation).
    let multi = exo
        .per_workload
        .iter()
        .filter(|m| m.unit_cycles[1..].iter().filter(|&&c| c > 0).count() >= 2)
        .count();
    println!("benchmarks using ≥2 BSAs within one application: {multi}");
}
