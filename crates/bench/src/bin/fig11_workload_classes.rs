//! Figure 11: interaction between accelerator, general core, and workload
//! class — the Fig. 10 curves split into regular (TPT, Parboil),
//! semi-regular (Mediabench, TPCH, SPECfp), and irregular (SPECint)
//! workload groups.

use prism_bench::{by_label, full_design_space, results_or_exit, run_worker_if_env};
use prism_exocore::{geomean, DesignResult};
use prism_workloads::RegularityClass;

fn class_of(workload: &str) -> RegularityClass {
    prism_workloads::by_name(workload)
        .map(|w| w.class())
        .unwrap_or(RegularityClass::SemiRegular)
}

fn class_speedup(r: &DesignResult, reference: &DesignResult, class: RegularityClass) -> f64 {
    geomean(
        r.per_workload
            .iter()
            .filter(|m| class_of(&m.workload) == class)
            .filter_map(|m| {
                reference
                    .per_workload
                    .iter()
                    .find(|x| x.workload == m.workload)
                    .map(|x| x.cycles as f64 / m.cycles.max(1) as f64)
            }),
    )
}

fn class_energy(r: &DesignResult, reference: &DesignResult, class: RegularityClass) -> f64 {
    geomean(
        r.per_workload
            .iter()
            .filter(|m| class_of(&m.workload) == class)
            .filter_map(|m| {
                reference
                    .per_workload
                    .iter()
                    .find(|x| x.workload == m.workload)
                    .map(|x| m.energy / x.energy)
            }),
    )
}

fn main() {
    // Under the grid coordinator stdout is the wire protocol; re-enter as
    // a worker before printing anything.
    run_worker_if_env();
    let results = results_or_exit(full_design_space());
    let reference = by_label(&results, "IO2").clone();

    println!("=== Fig. 11: accelerator × core × workload-class interaction ===");
    println!("(relative performance / relative energy vs IO2, per class)\n");

    let families: &[(&str, &str)] = &[
        ("Gen. Core Only", ""),
        ("SIMD", "S"),
        ("DP-CGRA", "D"),
        ("NS-DF", "N"),
        ("TRACE-P", "T"),
        ("ExoCore", "SDNT"),
    ];
    for (class, title) in [
        (RegularityClass::Regular, "Regular Workloads (TPT, Parboil)"),
        (
            RegularityClass::SemiRegular,
            "Semi-Regular Workloads (Mediabench, TPCH, SPECfp)",
        ),
        (RegularityClass::Irregular, "Irregular Workloads (SPECint)"),
    ] {
        println!("-- {title} --");
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14}",
            "family", "IO2", "OOO2", "OOO4", "OOO6"
        );
        for (name, codes) in families {
            let mut row = format!("{name:<16}");
            for core in ["IO2", "OOO2", "OOO4", "OOO6"] {
                let label = if codes.is_empty() {
                    core.to_string()
                } else {
                    format!("{core}-{codes}")
                };
                let r = by_label(&results, &label);
                let p = class_speedup(r, &reference, class);
                let e = class_energy(r, &reference, class);
                row.push_str(&format!("   {p:>5.2}/{e:<5.2}"));
            }
            println!("{row}");
        }
        println!();
    }

    // The paper's irregular-workload claim: a full OOO2 ExoCore achieves
    // ~1.6× performance and energy over OOO2-with-SIMD even on SPECint.
    let full = by_label(&results, "OOO2-SDNT");
    let simd_only = by_label(&results, "OOO2-S");
    let p = class_speedup(full, simd_only, RegularityClass::Irregular);
    let e = 1.0 / class_energy(full, simd_only, RegularityClass::Irregular);
    println!("SPECint: OOO2 full-ExoCore vs OOO2-SIMD = {p:.2}x perf, {e:.2}x energy-eff");
    println!("(paper: 1.6x perf and energy)");
}
