//! Input-dependence study (paper §2.6: "Since the TDG is input-dependent,
//! studying different inputs requires re-running the original
//! simulation"): re-trace each workload at three problem sizes and check
//! that the *relative* conclusions — which BSA the Oracle picks, and the
//! rough speedup — are stable across inputs.

use prism_bench::{run_or_exit, session};
use prism_exocore::oracle_schedule;
use prism_tdg::{run_exocore, BsaKind};
use prism_udg::{simulate_trace, CoreConfig};

const WORKLOADS: &[&str] = &[
    "stencil",
    "spmv",
    "cjpeg-1",
    "tpch1",
    "181.mcf",
    "456.hmmer",
];

fn main() {
    println!("=== Input sensitivity: ExoCore speedup across problem sizes ===\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}   chosen BSAs (small | default | large)",
        "workload", "small", "default", "large"
    );
    let core = CoreConfig::ooo2();
    let mut max_spread: f64 = 0.0;
    for name in WORKLOADS {
        let w = prism_workloads::by_name(name).expect(name);
        let mut speedups = Vec::new();
        let mut picks = Vec::new();
        for scale in [w.default_n / 3 + 16, w.default_n, w.default_n * 2] {
            let data = run_or_exit(session().prepare_sized(w, scale));
            let base = simulate_trace(&data.trace, &core);
            let a = oracle_schedule(&data, &core, &BsaKind::ALL);
            let run = run_exocore(&data.trace, &data.ir, &core, &data.plans, &a, &BsaKind::ALL);
            speedups.push(base.cycles as f64 / run.cycles.max(1) as f64);
            let mut kinds: Vec<char> = a.map.values().map(|k| k.code()).collect();
            kinds.sort_unstable();
            kinds.dedup();
            picks.push(if kinds.is_empty() {
                "-".to_string()
            } else {
                kinds.into_iter().collect()
            });
        }
        let spread = speedups.iter().cloned().fold(f64::MIN, f64::max)
            / speedups.iter().cloned().fold(f64::MAX, f64::min);
        max_spread = max_spread.max(spread);
        println!(
            "{:<12} {:>9.2}x {:>9.2}x {:>9.2}x   {} | {} | {}",
            name, speedups[0], speedups[1], speedups[2], picks[0], picks[1], picks[2]
        );
    }
    println!(
        "\nlargest speedup spread across inputs: {max_spread:.2}x \
         (conclusions are input-stable when this stays small)"
    );
}
