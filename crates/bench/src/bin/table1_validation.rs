//! Table 1 + Figure 5: validation of the TDG models.
//!
//! Row 1–2 (`OOO8→1`, `OOO1→8`): genuine cross-validation of the µDG core
//! model against an *independent* cycle-stepped reference simulator
//! (`prism_udg::simulate_reference`) across a microbenchmark set, at 1- and
//! 8-wide extremes plus the Table-4 cores.
//!
//! Rows 3–6 (C-Cores, BERET, SIMD, DySER): this reproduction's model
//! projections vs the published per-benchmark points digitized from
//! Fig. 5 (see `prism_bench::published` for the substitution caveat).

use prism_bench::published::{PublishedPoint, BERET, C_CORES, DYSER, SIMD};
use prism_bench::{run_or_exit, session};
use prism_exocore::WorkloadData;
use prism_tdg::{run_exocore, Assignment, BsaKind};
use prism_udg::{simulate_reference, simulate_trace, CoreConfig};

fn main() {
    println!("=== Table 1 / Fig. 5 reproduction: TDG model validation ===\n");
    core_cross_validation();
    accel_validation("C-Cores", BsaKind::NsDf, CoreConfig::io2(), C_CORES);
    accel_validation("BERET", BsaKind::TraceP, CoreConfig::io2(), BERET);
    accel_validation("SIMD", BsaKind::Simd, CoreConfig::ooo4(), SIMD);
    accel_validation("DySER", BsaKind::DpCgra, CoreConfig::ooo4(), DYSER);
}

/// Benchmark set for the core-model validation: the vertical
/// microbenchmarks (paper ref. \[2\]) plus a diverse registry slice.
const CORE_VALIDATION_SET: &[&str] = &[
    "conv",
    "stencil",
    "mm",
    "merge",
    "treesearch",
    "lbm",
    "needle",
    "cjpeg-1",
    "gsmdecode",
    "tpch1",
    "181.mcf",
    "458.sjeng",
    "456.hmmer",
    "175.vpr",
];

fn validation_workloads() -> Vec<&'static prism_workloads::Workload> {
    prism_workloads::MICRO
        .iter()
        .chain(
            CORE_VALIDATION_SET
                .iter()
                .map(|n| prism_workloads::by_name(n).expect(n)),
        )
        .collect()
}

fn core_cross_validation() {
    println!("-- Core model vs independent cycle-stepped reference --");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "benchmark", "ref IPC", "µDG IPC", "ref(8w)", "µDG(8w)", "err%"
    );
    let mut errs: Vec<f64> = Vec::new();
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for w in validation_workloads() {
        let name = w.name;
        let prepared = run_or_exit(session().prepare(w));
        let trace = &prepared.trace;
        let narrow = CoreConfig::ooo(1);
        let wide = CoreConfig::ooo(8);
        let r1 = simulate_reference(trace, &narrow);
        let u1 = simulate_trace(trace, &narrow);
        let r8 = simulate_reference(trace, &wide);
        let u8_ = simulate_trace(trace, &wide);
        for (r, u) in [(r1.ipc(), u1.ipc()), (r8.ipc(), u8_.ipc())] {
            let e = (u - r).abs() / r.max(1e-9);
            errs.push(e);
            lo = lo.min(u.min(r));
            hi = hi.max(u.max(r));
        }
        let err = ((u1.ipc() - r1.ipc()).abs() / r1.ipc()
            + (u8_.ipc() - r8.ipc()).abs() / r8.ipc())
            / 2.0;
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6.1}%",
            name,
            r1.ipc(),
            u1.ipc(),
            r8.ipc(),
            u8_.ipc(),
            err * 100.0
        );
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    println!(
        "\nOOO1↔OOO8 rows: mean |IPC error| = {:.1}%  (paper: 2–3%), range {:.2}–{:.2} IPC",
        mean * 100.0,
        lo,
        hi
    );
    println!("(paper range: 0.02–5.5 IPC)\n");
}

fn accel_validation(label: &str, kind: BsaKind, core: CoreConfig, published: &[PublishedPoint]) {
    println!(
        "-- {label} (model: {kind}) vs published points, base {} --",
        core.name
    );
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>9}",
        "benchmark", "pub spd", "our spd", "pub 1/E", "our 1/E"
    );
    let mut spd_errs = Vec::new();
    let mut en_errs = Vec::new();
    for p in published {
        let Some(w) = prism_workloads::by_name(p.benchmark) else {
            println!("{:<12} (not registered)", p.benchmark);
            continue;
        };
        let data = run_or_exit(session().prepare(w));
        let base = simulate_trace(&data.trace, &core);
        // Assign the BSA to every loop it has a plan for (single-accel
        // evaluation, as in the original publications).
        let mut a = Assignment::none();
        let lids: Vec<u32> = match kind {
            BsaKind::Simd => data.plans.simd.keys().copied().collect(),
            BsaKind::DpCgra => data.plans.dp_cgra.keys().copied().collect(),
            BsaKind::NsDf => data.plans.ns_df.keys().copied().collect(),
            BsaKind::TraceP => data.plans.trace_p.keys().copied().collect(),
        };
        for lid in non_overlapping(&data, lids) {
            a.set(lid, kind);
        }
        let run = run_exocore(&data.trace, &data.ir, &core, &data.plans, &a, &[kind]);
        let speedup = base.cycles as f64 / run.cycles.max(1) as f64;
        let energy_red = base.energy.total() / run.energy.total().max(f64::MIN_POSITIVE);
        spd_errs.push((speedup - p.speedup).abs() / p.speedup);
        en_errs.push((energy_red - p.energy_reduction).abs() / p.energy_reduction);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>9.2} {:>9.2}",
            p.benchmark, p.speedup, speedup, p.energy_reduction, energy_red
        );
    }
    let mp = 100.0 * spd_errs.iter().sum::<f64>() / spd_errs.len().max(1) as f64;
    let me = 100.0 * en_errs.iter().sum::<f64>() / en_errs.len().max(1) as f64;
    println!("{label}: mean perf err {mp:.0}%, mean energy err {me:.0}% (paper: 5–15%)\n");
}

/// Keeps only loops whose ancestors are not also in the list (outermost
/// wins), so the assignment is well-formed.
fn non_overlapping(data: &WorkloadData, mut lids: Vec<u32>) -> Vec<u32> {
    lids.sort_unstable();
    let mut kept: Vec<u32> = Vec::new();
    for lid in lids {
        let mut cur = data.ir.loops.loops[lid as usize].parent;
        let mut covered = false;
        while let Some(p) = cur {
            if kept.contains(&p) {
                covered = true;
                break;
            }
            cur = data.ir.loops.loops[p as usize].parent;
        }
        if !covered {
            kept.push(lid);
        }
    }
    kept
}
