//! Figure 3 / Figure 10: performance–energy tradeoffs of single-BSA
//! designs and full ExoCores across the four general-purpose cores,
//! geomean over all workloads. Each curve is one accelerator family; each
//! point on it is one core.

use prism_bench::{by_label, full_design_space, results_or_exit, run_worker_if_env};

fn main() {
    // Under the grid coordinator stdout is the wire protocol; re-enter as
    // a worker before printing anything.
    run_worker_if_env();
    let results = results_or_exit(full_design_space());
    let reference = by_label(&results, "IO2").clone();

    println!("=== Fig. 3 / Fig. 10: ExoCore tradeoffs across all workloads ===");
    println!("(relative performance ↑ and relative energy ↓ vs the IO2 core)\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "family \\ core", "IO2", "OOO2", "OOO4", "OOO6"
    );

    let families: &[(&str, &str)] = &[
        ("Gen. Core Only", ""),
        ("SIMD", "S"),
        ("DP-CGRA", "D"),
        ("NS-DF", "N"),
        ("TRACE-P", "T"),
        ("ExoCore (SDNT)", "SDNT"),
    ];
    for metric in ["performance", "energy"] {
        println!("-- relative {metric} --");
        for (name, codes) in families {
            let mut row = format!("{name:<22}");
            for core in ["IO2", "OOO2", "OOO4", "OOO6"] {
                let label = if codes.is_empty() {
                    core.to_string()
                } else {
                    format!("{core}-{codes}")
                };
                let r = by_label(&results, &label);
                let v = if metric == "performance" {
                    r.geomean_speedup_over(&reference)
                } else {
                    1.0 / r.geomean_energy_eff_over(&reference)
                };
                row.push_str(&format!(" {v:>8.2}"));
            }
            println!("{row}");
        }
        println!();
    }

    // Frontier check (the Fig. 3 cartoon): the ExoCore frontier must
    // dominate the general-core frontier.
    println!("-- frontier summary --");
    for core in ["IO2", "OOO2", "OOO4", "OOO6"] {
        let plain = by_label(&results, core);
        let full = by_label(&results, &format!("{core}-SDNT"));
        println!(
            "{core}: ExoCore gives {:.2}x perf and {:.2}x energy-eff over the bare core",
            full.geomean_speedup_over(plain),
            full.geomean_energy_eff_over(plain),
        );
    }
}
