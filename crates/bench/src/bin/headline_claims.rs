//! The paper's §1/§5 headline claims, checked against this reproduction's
//! measurements. Exits non-zero if a claim's *shape* fails to hold (the
//! substitutions in DESIGN.md mean absolute factors differ).

use prism_bench::{by_label, full_design_space, results_or_exit, run_worker_if_env};

fn main() {
    // Under the grid coordinator stdout is the wire protocol; re-enter as
    // a worker before printing anything.
    run_worker_if_env();
    let results = results_or_exit(full_design_space());
    let io2 = by_label(&results, "IO2").clone();
    let mut failures = 0;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("[{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // Claim 1: "a 2-wide OOO processor with three BSAs matches the
    // performance of a conventional 6-wide OOO core with SIMD, has 40%
    // lower area and is 2.6× more energy efficient."
    let exo2 = by_label(&results, "OOO2-SDN");
    let big = by_label(&results, "OOO6-S");
    let perf = exo2.geomean_speedup_over(big);
    let area = exo2.area_mm2 / big.area_mm2;
    let eff = exo2.geomean_energy_eff_over(big);
    check(
        "OOO2-SDN matches OOO6-SIMD performance",
        perf >= 0.9,
        format!("relative performance {perf:.2} (want ≥0.9; paper: ≈1)"),
    );
    check(
        "OOO2-SDN has ~40% lower area",
        area <= 0.75,
        format!("area ratio {area:.2} (want ≤0.75; paper: 0.60)"),
    );
    check(
        "OOO2-SDN is ~2.6x more energy efficient",
        eff >= 1.8,
        format!("energy-eff ratio {eff:.2} (want ≥1.8; paper: 2.6)"),
    );

    // Claim 2: "a full OOO2-based ExoCore provides 2.4× performance and
    // energy benefits over an OOO2 core."
    let full2 = by_label(&results, "OOO2-SDNT");
    let ooo2 = by_label(&results, "OOO2");
    let p = full2.geomean_speedup_over(ooo2);
    let e = full2.geomean_energy_eff_over(ooo2);
    check(
        "full OOO2 ExoCore ≥1.5x perf over OOO2",
        p >= 1.5,
        format!("{p:.2}x (paper: 2.4x)"),
    );
    check(
        "full OOO2 ExoCore ≥1.5x energy-eff over OOO2",
        e >= 1.5,
        format!("{e:.2}x (paper: 2.4x)"),
    );

    // Claim 3: "an OOO6 ExoCore can achieve up to 1.9× performance and
    // 2.4× energy benefits over an OOO6 core."
    let full6 = by_label(&results, "OOO6-SDNT");
    let ooo6 = by_label(&results, "OOO6");
    let p6 = full6.geomean_speedup_over(ooo6);
    let e6 = full6.geomean_energy_eff_over(ooo6);
    check(
        "full OOO6 ExoCore speeds up OOO6",
        p6 >= 1.2,
        format!("{p6:.2}x (paper: up to 1.9x)"),
    );
    check(
        "full OOO6 ExoCore improves OOO6 energy",
        e6 >= 1.3,
        format!("{e6:.2}x (paper: up to 2.4x)"),
    );

    // Claim 4: BSAs help small cores' performance more than big cores'.
    check(
        "BSA perf benefit shrinks with core size",
        p >= p6,
        format!("OOO2 gain {p:.2}x vs OOO6 gain {p6:.2}x"),
    );

    // Claim 5: "the full IO2 ExoCore is the most energy-efficient among
    // all designs" (allow near-tie).
    let io2_full = by_label(&results, "IO2-SDNT");
    let best_eff = results
        .iter()
        .map(|r| r.geomean_energy_eff_over(&io2))
        .fold(0.0f64, f64::max);
    let io2_eff = io2_full.geomean_energy_eff_over(&io2);
    check(
        "full IO2 ExoCore is (near-)most energy efficient",
        io2_eff >= 0.9 * best_eff,
        format!("IO2-SDNT eff {io2_eff:.2} vs best {best_eff:.2}"),
    );

    // Claim 6: low unaccelerated fraction on the full OOO2 ExoCore.
    let unaccel = full2
        .per_workload
        .iter()
        .map(|m| m.unaccelerated)
        .sum::<f64>()
        / full2.per_workload.len() as f64;
    check(
        "most cycles are accelerated on the full OOO2 ExoCore",
        unaccel <= 0.35,
        format!(
            "avg unaccelerated fraction {:.0}% (paper: 16%)",
            unaccel * 100.0
        ),
    );

    println!();
    if failures == 0 {
        println!("all headline claims hold in shape ✓");
    } else {
        println!("{failures} claim(s) failed");
        std::process::exit(1);
    }
}
