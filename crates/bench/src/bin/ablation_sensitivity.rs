//! Ablation study (the paper's §5.5 suggested extension: "a much larger
//! design space including varying core and accelerator parameters"):
//! sensitivity of the headline results to the microarchitectural knobs the
//! DESIGN.md calls out.
//!
//! Four sweeps:
//!   1. issue-window size of the host OOO2,
//!   2. ROB size of the host OOO2,
//!   3. mispredict penalty,
//!   4. SIMD vector length and NS-DF live-transfer cost (accelerator side).

use prism_bench::{prepare_named, run_or_exit};
use prism_exocore::{geomean, oracle_schedule};
use prism_pipeline::PreparedWorkload;
use prism_tdg::{run_exocore, BsaKind};
use prism_udg::{simulate_trace, CoreConfig};

const WORKLOADS: &[&str] = &["stencil", "cjpeg-1", "tpch1", "456.hmmer", "458.sjeng"];

fn prepare() -> Vec<PreparedWorkload> {
    run_or_exit(prepare_named(WORKLOADS))
}

fn geomean_speedup(data: &[PreparedWorkload], core: &CoreConfig) -> (f64, f64) {
    // (full-ExoCore speedup, full-ExoCore energy-eff) vs this core alone.
    let ratios: Vec<(f64, f64)> = data
        .iter()
        .map(|w| {
            let base = simulate_trace(&w.trace, core);
            let a = oracle_schedule(w, core, &BsaKind::ALL);
            let run = run_exocore(&w.trace, &w.ir, core, &w.plans, &a, &BsaKind::ALL);
            (
                base.cycles as f64 / run.cycles.max(1) as f64,
                base.energy.total() / run.energy.total(),
            )
        })
        .collect();
    (
        geomean(ratios.iter().map(|r| r.0)),
        geomean(ratios.iter().map(|r| r.1)),
    )
}

fn main() {
    let data = prepare();
    println!("=== Ablation: sensitivity of the ExoCore benefit to design knobs ===");
    println!("(geomean over {:?})\n", WORKLOADS);

    println!("-- host issue-window size (OOO2 otherwise) --");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "window", "base IPC", "exo speedup", "exo en-eff"
    );
    for window in [16, 32, 64, 128] {
        let mut core = CoreConfig::ooo2();
        core.window_size = window;
        core.name = format!("OOO2w{window}");
        let ipc = geomean(data.iter().map(|w| simulate_trace(&w.trace, &core).ipc()));
        let (s, e) = geomean_speedup(&data, &core);
        println!("{window:>8} {ipc:>10.2} {s:>12.2} {e:>12.2}");
    }

    println!("\n-- host ROB size (OOO2 otherwise) --");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "rob", "base IPC", "exo speedup", "exo en-eff"
    );
    for rob in [32, 64, 128, 256] {
        let mut core = CoreConfig::ooo2();
        core.rob_size = rob;
        core.name = format!("OOO2r{rob}");
        let ipc = geomean(data.iter().map(|w| simulate_trace(&w.trace, &core).ipc()));
        let (s, e) = geomean_speedup(&data, &core);
        println!("{rob:>8} {ipc:>10.2} {s:>12.2} {e:>12.2}");
    }

    println!("\n-- mispredict penalty (OOO2 otherwise) --");
    println!("{:>8} {:>10} {:>12}", "penalty", "base IPC", "exo speedup");
    for pen in [4, 8, 16, 24] {
        let mut core = CoreConfig::ooo2();
        core.mispredict_penalty = pen;
        core.name = format!("OOO2p{pen}");
        let ipc = geomean(data.iter().map(|w| simulate_trace(&w.trace, &core).ipc()));
        let (s, _) = geomean_speedup(&data, &core);
        println!("{pen:>8} {ipc:>10.2} {s:>12.2}");
    }

    println!("\n-- SIMD vector length (plan override, stencil) --");
    println!("{:>4} {:>12}", "VL", "speedup");
    let stencil = &data[0];
    let core = CoreConfig::ooo2().with_simd();
    let base = simulate_trace(&stencil.trace, &CoreConfig::ooo2());
    for vl in [2usize, 4, 8] {
        let mut plans = stencil.plans.clone();
        for p in plans.simd.values_mut() {
            p.vl = vl;
        }
        let mut a = prism_tdg::Assignment::none();
        let lid = *plans.simd.keys().next().expect("stencil vectorizes");
        a.set(lid, BsaKind::Simd);
        let run = run_exocore(
            &stencil.trace,
            &stencil.ir,
            &core,
            &plans,
            &a,
            &[BsaKind::Simd],
        );
        println!("{vl:>4} {:>12.2}", base.cycles as f64 / run.cycles as f64);
    }

    println!("\n-- NS-DF live-transfer cost (plan override, tpch1) --");
    println!("{:>6} {:>12}", "xfer", "speedup");
    let tpch = data.iter().find(|w| w.name == "tpch1").expect("tpch1");
    let base = simulate_trace(&tpch.trace, &CoreConfig::ooo2());
    for xfer in [0u64, 8, 32, 128] {
        let mut plans = tpch.plans.clone();
        for p in plans.ns_df.values_mut() {
            p.live_xfer = xfer;
        }
        let lid = *plans.ns_df.keys().next().expect("tpch1 offloads");
        let mut a = prism_tdg::Assignment::none();
        a.set(lid, BsaKind::NsDf);
        let run = run_exocore(
            &tpch.trace,
            &tpch.ir,
            &CoreConfig::ooo2(),
            &plans,
            &a,
            &[BsaKind::NsDf],
        );
        println!("{xfer:>6} {:>12.2}", base.cycles as f64 / run.cycles as f64);
    }

    println!("\nExpected shapes: window/ROB growth shrinks the ExoCore speedup (the");
    println!("core catches up); mispredict penalty raises it (BSAs dodge speculation);");
    println!("VL saturates past the memory ports; live-transfer cost only matters");
    println!("when regions are short (tpch1's single long region barely moves).");
}
