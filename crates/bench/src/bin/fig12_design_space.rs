//! Figure 12: the full 64-point design-space characterization — speedup,
//! energy efficiency, and area of every core × BSA-subset combination,
//! relative to the dual-issue in-order (IO2) design, sorted by speedup
//! (as the paper's x-axis is).

use prism_bench::{by_label, full_design_space, results_or_exit, run_worker_if_env};

fn main() {
    // Under the grid coordinator stdout is the wire protocol; re-enter as
    // a worker before printing anything.
    run_worker_if_env();
    let results = results_or_exit(full_design_space());
    let reference = by_label(&results, "IO2").clone();

    let mut rows: Vec<(String, f64, f64, f64)> = results
        .iter()
        .map(|r| {
            (
                r.label.clone(),
                r.geomean_speedup_over(&reference),
                r.geomean_energy_eff_over(&reference),
                r.area_mm2 / reference.area_mm2,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!("=== Fig. 12: design-space characterization (all 64 ExoCores) ===");
    println!("(vs IO2; sorted by speedup, as in the paper's x-axis)\n");
    println!(
        "{:<14} {:>8} {:>11} {:>7}",
        "config", "speedup", "energy-eff", "area"
    );
    for (label, s, e, a) in &rows {
        println!("{label:<14} {s:>8.2} {e:>11.2} {a:>7.2}");
    }

    // The quantitative insights of §5.2.
    println!("\n-- §5.2 design-choice checks --");
    let ooo6_simd = by_label(&results, "OOO6-S");
    let p_ref = ooo6_simd.geomean_speedup_over(&reference);
    let e_ref = ooo6_simd.geomean_energy_eff_over(&reference);
    let a_ref = ooo6_simd.area_mm2 / reference.area_mm2;

    // "Matching performance" uses a 95% band, as geomeans over different
    // workload analogues wobble by a few percent.
    let beats = |prefix: &str| {
        rows.iter()
            .filter(|(l, s, e, a)| {
                l.starts_with(prefix)
                    && l.contains('-')
                    && *s >= 0.95 * p_ref
                    && *e >= e_ref
                    && *a <= a_ref
            })
            .count()
    };
    println!("OOO6-S baseline: speedup {p_ref:.2}, energy-eff {e_ref:.2}, area {a_ref:.2}");
    println!(
        "OOO2 ExoCores matching OOO6-S perf at lower energy+area: {} (paper: 4)",
        beats("OOO2")
    );
    println!(
        "OOO4 ExoCores matching OOO6-S perf at lower energy+area: {} (paper: 9)",
        beats("OOO4")
    );
    let best_io = rows
        .iter()
        .filter(|(l, ..)| l.starts_with("IO2"))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let ooo6 = by_label(&results, "OOO6");
    println!(
        "best IO2 ExoCore ({}) reaches {:.0}% of OOO6 performance (paper: 88%)",
        best_io.0,
        100.0 * best_io.1 / ooo6.geomean_speedup_over(&reference)
    );
    let full_io2 = rows.iter().find(|(l, ..)| l == "IO2-SDNT").unwrap();
    let most_eff = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    println!(
        "most energy-efficient design: {} ({:.2}); full IO2 ExoCore: {:.2} (paper: IO2 full ExoCore is most efficient)",
        most_eff.0, most_eff.2, full_io2.2
    );
}
