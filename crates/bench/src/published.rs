//! Published per-benchmark validation targets, digitized from the paper's
//! Figure 5 scatter plots.
//!
//! The paper validates its TDG models against the *published* results of
//! each accelerator (C-Cores \[53\], BERET \[18\]) or against measured
//! simulations (SIMD, DySER \[17\]). Those numbers are reproduced here —
//! read off the Fig. 5 axes, so accurate to roughly ±0.05 — and compared
//! against this reproduction's model projections in `table1_validation`.
//!
//! Substitution note (DESIGN.md §1.4): our kernels are behavioral
//! analogues, not the original binaries, so per-benchmark error against
//! these points is expected to exceed the paper's (≤15%); what must match
//! is the *range* and *direction* of each accelerator's effect.

/// A published validation point: speedup and energy reduction over the
/// accelerator's baseline core.
#[derive(Debug, Clone, Copy)]
pub struct PublishedPoint {
    /// Benchmark name (as registered in `prism-workloads`).
    pub benchmark: &'static str,
    /// Published speedup over the baseline.
    pub speedup: f64,
    /// Published energy reduction factor (energy_base / energy_accel).
    pub energy_reduction: f64,
}

/// C-Cores validation set (paper Fig. 5 row 3; baseline IO2). The paper's
/// five benchmarks, speedups clustered slightly above/below 1× with strong
/// energy reduction.
pub const C_CORES: &[PublishedPoint] = &[
    PublishedPoint {
        benchmark: "djpeg-2",
        speedup: 1.05,
        energy_reduction: 1.9,
    },
    PublishedPoint {
        benchmark: "cjpeg-2",
        speedup: 0.95,
        energy_reduction: 1.7,
    },
    PublishedPoint {
        benchmark: "175.vpr",
        speedup: 0.90,
        energy_reduction: 1.4,
    },
    PublishedPoint {
        benchmark: "429.mcf",
        speedup: 1.00,
        energy_reduction: 1.3,
    },
    PublishedPoint {
        benchmark: "401.bzip2",
        speedup: 1.10,
        energy_reduction: 1.5,
    },
    PublishedPoint {
        benchmark: "256.bzip2",
        speedup: 0.95,
        energy_reduction: 1.45,
    },
];

/// BERET validation set (paper Fig. 5 row 4; baseline IO2): speedups
/// 0.82–1.17×, energy reductions 1.0–2.2×.
pub const BERET: &[PublishedPoint] = &[
    PublishedPoint {
        benchmark: "181.mcf",
        speedup: 1.05,
        energy_reduction: 1.6,
    },
    PublishedPoint {
        benchmark: "429.mcf",
        speedup: 1.02,
        energy_reduction: 1.5,
    },
    PublishedPoint {
        benchmark: "164.gzip",
        speedup: 0.95,
        energy_reduction: 1.3,
    },
    PublishedPoint {
        benchmark: "175.vpr",
        speedup: 0.85,
        energy_reduction: 1.2,
    },
    PublishedPoint {
        benchmark: "197.parser",
        speedup: 0.90,
        energy_reduction: 1.25,
    },
    PublishedPoint {
        benchmark: "256.bzip2",
        speedup: 1.00,
        energy_reduction: 1.4,
    },
    PublishedPoint {
        benchmark: "cjpeg-2",
        speedup: 1.10,
        energy_reduction: 1.8,
    },
    PublishedPoint {
        benchmark: "gsmdecode",
        speedup: 1.17,
        energy_reduction: 2.0,
    },
    PublishedPoint {
        benchmark: "gsmencode",
        speedup: 1.08,
        energy_reduction: 1.9,
    },
];

/// SIMD validation set (paper Fig. 5 row 5; baseline OOO4, gem5-measured):
/// speedups 1.0–3.6×.
pub const SIMD: &[PublishedPoint] = &[
    PublishedPoint {
        benchmark: "conv",
        speedup: 3.3,
        energy_reduction: 2.6,
    },
    PublishedPoint {
        benchmark: "radar",
        speedup: 2.2,
        energy_reduction: 1.9,
    },
    PublishedPoint {
        benchmark: "fft",
        speedup: 1.9,
        energy_reduction: 1.6,
    },
    PublishedPoint {
        benchmark: "mm",
        speedup: 2.8,
        energy_reduction: 2.2,
    },
    PublishedPoint {
        benchmark: "stencil",
        speedup: 3.6,
        energy_reduction: 2.8,
    },
    PublishedPoint {
        benchmark: "lbm",
        speedup: 2.4,
        energy_reduction: 2.0,
    },
    PublishedPoint {
        benchmark: "nnw",
        speedup: 2.0,
        energy_reduction: 1.7,
    },
    PublishedPoint {
        benchmark: "spmv",
        speedup: 1.1,
        energy_reduction: 1.0,
    },
    PublishedPoint {
        benchmark: "cutcp",
        speedup: 1.6,
        energy_reduction: 1.4,
    },
];

/// DySER validation set (paper Fig. 5 row 6; baseline OOO4): speedups up
/// to ~6× on the most separable kernels.
pub const DYSER: &[PublishedPoint] = &[
    PublishedPoint {
        benchmark: "conv",
        speedup: 3.8,
        energy_reduction: 2.4,
    },
    PublishedPoint {
        benchmark: "radar",
        speedup: 2.6,
        energy_reduction: 1.8,
    },
    PublishedPoint {
        benchmark: "nbody",
        speedup: 3.0,
        energy_reduction: 2.0,
    },
    PublishedPoint {
        benchmark: "mm",
        speedup: 3.4,
        energy_reduction: 2.1,
    },
    PublishedPoint {
        benchmark: "stencil",
        speedup: 4.2,
        energy_reduction: 2.5,
    },
    PublishedPoint {
        benchmark: "kmeans",
        speedup: 2.2,
        energy_reduction: 1.6,
    },
    PublishedPoint {
        benchmark: "fft",
        speedup: 2.0,
        energy_reduction: 1.5,
    },
    PublishedPoint {
        benchmark: "nnw",
        speedup: 2.4,
        energy_reduction: 1.8,
    },
];
