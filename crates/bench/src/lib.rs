//! # prism-bench
//!
//! The evaluation harness: one binary per table and figure of *Analyzing
//! Behavior Specialized Acceleration* (ASPLOS 2016). See `DESIGN.md` §4
//! for the experiment index and `EXPERIMENTS.md` for recorded results.

#![warn(missing_docs)]

pub mod published;

use std::path::PathBuf;

use prism_exocore::{explore, DesignResult, WorkloadData};

/// Prepares every registered workload (trace + IR + plans).
#[must_use]
pub fn prepare_all_workloads() -> Vec<WorkloadData> {
    prism_workloads::ALL
        .iter()
        .map(|w| {
            WorkloadData::prepare(&w.build_default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        })
        .collect()
}

/// Prepares the workloads of one suite.
#[must_use]
pub fn prepare_suite(suite: prism_workloads::Suite) -> Vec<WorkloadData> {
    prism_workloads::by_suite(suite)
        .map(|w| {
            WorkloadData::prepare(&w.build_default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        })
        .collect()
}

fn cache_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/prism_dse_cache.json")
}

/// Runs (or loads from cache) the full 64-point design-space exploration
/// over all workloads. Delete `target/prism_dse_cache.json` or set
/// `PRISM_REFRESH=1` to recompute.
#[must_use]
pub fn full_design_space() -> Vec<DesignResult> {
    let path = cache_path();
    let refresh = std::env::var_os("PRISM_REFRESH").is_some();
    if !refresh {
        if let Ok(bytes) = std::fs::read(&path) {
            if let Ok(results) = serde_json::from_slice::<Vec<DesignResult>>(&bytes) {
                if results.len() == 64 {
                    return results;
                }
            }
        }
    }
    eprintln!("[prism-bench] running full design-space exploration (64 points × {} workloads)…",
        prism_workloads::ALL.len());
    let data = prepare_all_workloads();
    let results = explore(&data);
    if let Ok(json) = serde_json::to_vec(&results) {
        let _ = std::fs::write(&path, json);
    }
    results
}

/// Finds a design result by its Fig. 12 label.
///
/// # Panics
///
/// Panics if the label is unknown.
#[must_use]
pub fn by_label<'a>(results: &'a [DesignResult], label: &str) -> &'a DesignResult {
    results
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("no design point labeled {label}"))
}

/// Formats a ratio column.
#[must_use]
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}
