//! # prism-bench
//!
//! The evaluation harness: one binary per table and figure of *Analyzing
//! Behavior Specialized Acceleration* (ASPLOS 2016). See `DESIGN.md` §4
//! for the experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! Every binary goes through the shared [`session`] — a
//! [`prism_pipeline::Session`] that memoizes trace/IR/plan preparation,
//! caches design-point results in a content-addressed artifact store, and
//! fans work out over `--jobs N` (or `PRISM_JOBS`) worker threads. With
//! `PRISM_WORKERS=N` (N > 1), full-space sweeps additionally shard across
//! N worker *processes* via [`prism_grid`]. `--stats` on any figure
//! binary prints the store/session counters to stderr.

#![warn(missing_docs)]

pub mod perf;
pub mod published;

use std::sync::OnceLock;

use prism_exocore::DesignResult;
pub use prism_grid::run_worker_if_env;
use prism_grid::{run_grid, workers_from_env, GridConfig};
use prism_pipeline::{
    flag_from_args, jobs_from_args, PipelineError, PreparedWorkload, Session, SweepReport,
};

/// The process-wide pipeline session shared by all bench binaries.
/// Honors a `--jobs N` command-line flag, `PRISM_JOBS`, and
/// `PRISM_ARTIFACT_DIR`.
pub fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        match jobs_from_args(&args) {
            Some(jobs) => Session::new().with_jobs(jobs),
            None => Session::new(),
        }
    })
}

/// Whether `--stats` was passed to this binary.
#[must_use]
pub fn stats_requested() -> bool {
    let args: Vec<String> = std::env::args().collect();
    flag_from_args(&args, "--stats")
}

/// Whether `--resume` was passed to this binary: replay the sweep
/// journal of a killed run and skip every unit it records as settled.
#[must_use]
pub fn resume_requested() -> bool {
    let args: Vec<String> = std::env::args().collect();
    flag_from_args(&args, "--resume")
}

/// Prints the shared session's counters to stderr when `--stats` was
/// passed. Figure binaries call this after their sweep.
pub fn log_stats_if_requested() {
    if stats_requested() {
        eprint!("{}", session().stats().render());
    }
}

/// Unwraps a pipeline result, exiting with a readable error (workload +
/// stage) instead of a panic backtrace.
pub fn run_or_exit<T>(result: Result<T, PipelineError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Prepares every registered workload (trace + IR + plans), in parallel.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the workload and failing stage.
pub fn prepare_all_workloads() -> Result<Vec<PreparedWorkload>, PipelineError> {
    session().prepare_all()
}

/// Prepares the workloads of one suite, in parallel.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the workload and failing stage.
pub fn prepare_suite(
    suite: prism_workloads::Suite,
) -> Result<Vec<PreparedWorkload>, PipelineError> {
    session().prepare_suite(suite)
}

/// Prepares registry workloads by name, in parallel.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the workload and failing stage; an
/// unknown name fails in the build stage.
pub fn prepare_named(names: &[&str]) -> Result<Vec<PreparedWorkload>, PipelineError> {
    let workloads = names
        .iter()
        .map(|n| {
            prism_workloads::by_name(n).ok_or_else(|| {
                PipelineError::new(*n, prism_pipeline::Stage::Build, "unknown workload")
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    session().prepare_batch(&workloads)
}

/// Runs the full 64-point design-space exploration over all workloads,
/// loading already-evaluated points from the content-addressed artifact
/// store (`target/prism-artifacts`, override with `PRISM_ARTIFACT_DIR`).
/// Artifacts invalidate automatically when any input changes; a fully
/// cached run does no tracing at all. Cache hit/miss counts are logged.
///
/// Failures are isolated per unit: the report carries results for every
/// healthy design point plus a quarantine list for the rest.
///
/// With `PRISM_WORKERS=N` (N > 1), the sweep is sharded across N worker
/// processes by the [`prism_grid`] coordinator instead; the merged report
/// is identical to the in-process one (both draw from the same
/// content-addressed store).
///
/// The sweep writes an append-only journal of settled units; `--resume`
/// replays it after a kill and recomputes only what is missing, producing
/// the same report as an uninterrupted run.
#[must_use]
pub fn full_design_space() -> SweepReport {
    // Worker mode: under the grid coordinator this binary's stdout is the
    // wire protocol, so re-enter as a worker before printing anything.
    prism_grid::run_worker_if_env();

    if let Some(workers) = workers_from_env() {
        let mut config = GridConfig::full_space(workers);
        config.resume = resume_requested();
        match run_grid(&config) {
            Ok(outcome) => {
                eprintln!(
                    "[grid] {} workers, {} units ({} retried, {} reassigned)",
                    outcome.stats.workers_spawned,
                    outcome.stats.units_total,
                    outcome.stats.units_retried,
                    outcome.stats.units_reassigned
                );
                if stats_requested() {
                    eprint!("{}", outcome.stats.render());
                }
                return outcome.report;
            }
            Err(e) => eprintln!("[grid] {e}; falling back to in-process sweep"),
        }
    }
    let s = session();
    let report = s.full_design_space_resumable(resume_requested());
    s.log_stats();
    log_stats_if_requested();
    report
}

/// Unwraps a sweep for figure binaries: renders the failure summary (if
/// any) to stderr, exits nonzero only when *everything* failed, and
/// otherwise returns the healthy results so the figure still prints from
/// whatever survived.
#[must_use]
pub fn results_or_exit(report: SweepReport) -> Vec<DesignResult> {
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }
    if report.all_failed() {
        eprintln!("error: every design point failed; nothing to report");
        std::process::exit(report.exit_code());
    }
    report.results
}

/// Finds a design result by its Fig. 12 label.
///
/// # Panics
///
/// Panics if the label is unknown.
#[must_use]
pub fn by_label<'a>(results: &'a [DesignResult], label: &str) -> &'a DesignResult {
    results
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("no design point labeled {label}"))
}

/// Formats a ratio column.
#[must_use]
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}
