//! The `prism bench` perf suite as a `cargo bench` target: measures
//! simulator/µDG/transform throughput and end-to-end exploration wall
//! time (composed vs direct), printing the metric table and the JSON
//! report to stdout. (Dependency-free timing harness; criterion is not
//! available in this build environment.)
//!
//! Run with: `cargo bench -p prism-bench --bench perf -- [--quick]`
//!
//! Prefer the `prism bench` subcommand for writing `BENCH_<rev>.json`
//! and comparing against a checked-in baseline.

use prism_bench::perf::{run, PerfOptions};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = run(&PerfOptions {
        quick,
        ..PerfOptions::default()
    });
    print!("{}", report.to_json());
}
