//! Benchmarks of design-space-exploration throughput: how fast a full
//! 16-subset sweep runs per workload — the paper's argument that the TDG
//! makes 64-point explorations tractable. (Dependency-free timing harness;
//! criterion is not available in this build environment.)
//!
//! Run with: `cargo bench -p prism-bench --bench design_space`

use std::time::Instant;

use prism_exocore::{all_bsa_subsets, evaluate_point, oracle_table, DesignPoint, WorkloadData};
use prism_udg::CoreConfig;

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    println!("{name:<44} {:>12.2?}", start.elapsed() / iters);
}

fn main() {
    for name in ["stencil", "cjpeg-1", "181.mcf"] {
        let w = prism_workloads::by_name(name).expect("registered");
        let data = vec![WorkloadData::prepare(&(w.build)(w.default_n / 2)).unwrap()];
        let core = CoreConfig::ooo2();
        let tables = vec![oracle_table(&data[0], &core)];
        bench(&format!("dse_16_subsets/{name}"), 10, || {
            for bsas in all_bsa_subsets() {
                let point = DesignPoint::new(core.clone(), bsas);
                std::hint::black_box(evaluate_point(&data, &tables, &point));
            }
        });
    }

    for name in ["mm", "spmv", "464.h264ref"] {
        let w = prism_workloads::by_name(name).expect("registered");
        let program = (w.build)(w.default_n / 2);
        bench(&format!("workload_preparation/{name}"), 10, || {
            WorkloadData::prepare(&program).unwrap()
        });
    }
}
