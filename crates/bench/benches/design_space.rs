//! Criterion benchmarks of design-space-exploration throughput: how fast a
//! full 16-subset sweep runs per workload — the paper's argument that the
//! TDG makes 64-point explorations tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use prism_exocore::{all_bsa_subsets, evaluate_point, oracle_table, DesignPoint, WorkloadData};
use prism_udg::CoreConfig;

fn bench_subset_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse_16_subsets");
    for name in ["stencil", "cjpeg-1", "181.mcf"] {
        let w = prism_workloads::by_name(name).expect("registered");
        let data = vec![WorkloadData::prepare(&(w.build)(w.default_n / 2)).unwrap()];
        let core = CoreConfig::ooo2();
        let tables = vec![oracle_table(&data[0], &core)];
        g.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                for bsas in all_bsa_subsets() {
                    let point = DesignPoint::new(core.clone(), bsas);
                    std::hint::black_box(evaluate_point(data, &tables, &point));
                }
            })
        });
    }
    g.finish();
}

fn bench_workload_preparation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_preparation");
    for name in ["mm", "spmv", "464.h264ref"] {
        let w = prism_workloads::by_name(name).expect("registered");
        let program = (w.build)(w.default_n / 2);
        g.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| WorkloadData::prepare(std::hint::black_box(p)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = dse;
    config = Criterion::default().sample_size(10);
    targets = bench_subset_sweep, bench_workload_preparation
}
criterion_main!(dse);
