//! Criterion benchmarks of the modeling framework itself.
//!
//! The TDG's pitch is methodological: it must be much faster than
//! cycle-level simulation while retaining accuracy. These benches measure
//! every stage of the pipeline — and `udg_vs_reference` quantifies the
//! speed gap between the one-pass µDG model and the cycle-stepped
//! reference simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use prism_exocore::{oracle_pick, oracle_table, WorkloadData};
use prism_tdg::{run_exocore, AccelPlans, BsaKind};
use prism_udg::{simulate_reference, simulate_trace, CoreConfig};

fn stencil_trace() -> prism_sim::Trace {
    let w = prism_workloads::by_name("stencil").expect("registered");
    prism_sim::trace(&(w.build)(800)).expect("traces")
}

fn bench_trace_generation(c: &mut Criterion) {
    let w = prism_workloads::by_name("stencil").expect("registered");
    let program = (w.build)(800);
    let n = prism_sim::trace(&program).unwrap().len() as u64;
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(n));
    g.bench_function("stencil", |b| {
        b.iter(|| prism_sim::trace(std::hint::black_box(&program)).unwrap())
    });
    g.finish();
}

fn bench_udg_model(c: &mut Criterion) {
    let trace = stencil_trace();
    let mut g = c.benchmark_group("udg_model");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
        g.bench_with_input(BenchmarkId::from_parameter(&cfg.name), &cfg, |b, cfg| {
            b.iter(|| simulate_trace(std::hint::black_box(&trace), cfg))
        });
    }
    g.finish();
}

fn bench_udg_vs_reference(c: &mut Criterion) {
    let trace = stencil_trace();
    let cfg = CoreConfig::ooo4();
    let mut g = c.benchmark_group("udg_vs_reference");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("udg_one_pass", |b| {
        b.iter(|| simulate_trace(std::hint::black_box(&trace), &cfg))
    });
    g.bench_function("cycle_stepped_reference", |b| {
        b.iter(|| simulate_reference(std::hint::black_box(&trace), &cfg))
    });
    g.finish();
}

fn bench_ir_analysis(c: &mut Criterion) {
    let trace = stencil_trace();
    let mut g = c.benchmark_group("ir_analysis");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("full_stack", |b| {
        b.iter(|| prism_ir::ProgramIr::analyze(std::hint::black_box(&trace)))
    });
    g.finish();
}

fn bench_bsa_planning(c: &mut Criterion) {
    let trace = stencil_trace();
    let ir = prism_ir::ProgramIr::analyze(&trace);
    c.bench_function("bsa_planning/all_four", |b| {
        b.iter(|| AccelPlans::analyze(std::hint::black_box(&ir)))
    });
}

fn bench_transforms(c: &mut Criterion) {
    let w = prism_workloads::by_name("stencil").expect("registered");
    let data = WorkloadData::prepare(&(w.build)(800)).unwrap();
    let core = CoreConfig::ooo2();
    let table = oracle_table(&data, &core);
    let mut g = c.benchmark_group("combined_tdg_run");
    g.throughput(Throughput::Elements(data.trace.len() as u64));
    for kind in BsaKind::ALL {
        let a = oracle_pick(&table, &data, &[kind]);
        if a.map.is_empty() {
            continue;
        }
        g.bench_with_input(BenchmarkId::from_parameter(kind), &a, |b, a| {
            b.iter(|| {
                run_exocore(
                    std::hint::black_box(&data.trace),
                    &data.ir,
                    &core,
                    &data.plans,
                    a,
                    &[kind],
                )
            })
        });
    }
    g.finish();
}

fn bench_oracle_scheduling(c: &mut Criterion) {
    let w = prism_workloads::by_name("cjpeg-1").expect("registered");
    let data = WorkloadData::prepare(&(w.build)(600)).unwrap();
    let core = CoreConfig::ooo2();
    c.bench_function("oracle_scheduling/cjpeg", |b| {
        b.iter(|| oracle_table(std::hint::black_box(&data), &core))
    });
}

criterion_group! {
    name = framework;
    config = Criterion::default().sample_size(20);
    targets = bench_trace_generation, bench_udg_model, bench_udg_vs_reference,
        bench_ir_analysis, bench_bsa_planning, bench_transforms, bench_oracle_scheduling
}
criterion_main!(framework);
