//! Benchmarks of the modeling framework itself (dependency-free timing
//! harness; criterion is not available in this build environment).
//!
//! The TDG's pitch is methodological: it must be much faster than
//! cycle-level simulation while retaining accuracy. These benches measure
//! every stage of the pipeline — and `udg_vs_reference` quantifies the
//! speed gap between the one-pass µDG model and the cycle-stepped
//! reference simulator.
//!
//! Run with: `cargo bench -p prism-bench --bench framework`

use std::time::Instant;

use prism_exocore::{oracle_pick, oracle_table, WorkloadData};
use prism_tdg::{run_exocore, AccelPlans, BsaKind};
use prism_udg::{simulate_reference, simulate_trace, CoreConfig};

/// Times `f` over `iters` runs and prints mean wall time, plus per-element
/// throughput when `elems > 0`.
fn bench<T>(name: &str, elems: u64, iters: u32, mut f: impl FnMut() -> T) {
    // One warm-up run.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean = start.elapsed() / iters;
    if elems > 0 {
        let per_sec = elems as f64 / mean.as_secs_f64();
        println!("{name:<44} {mean:>12.2?}  ({per_sec:>12.0} elems/s)");
    } else {
        println!("{name:<44} {mean:>12.2?}");
    }
}

fn stencil_trace() -> prism_sim::Trace {
    let w = prism_workloads::by_name("stencil").expect("registered");
    prism_sim::trace(&(w.build)(800)).expect("traces")
}

fn main() {
    let w = prism_workloads::by_name("stencil").expect("registered");
    let program = (w.build)(800);
    let trace = stencil_trace();
    let n = trace.len() as u64;

    bench("trace_generation/stencil", n, 20, || {
        prism_sim::trace(&program).unwrap()
    });

    for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
        bench(&format!("udg_model/{}", cfg.name), n, 20, || {
            simulate_trace(&trace, &cfg)
        });
    }

    let ooo4 = CoreConfig::ooo4();
    bench("udg_vs_reference/udg_one_pass", n, 20, || {
        simulate_trace(&trace, &ooo4)
    });
    bench("udg_vs_reference/cycle_stepped_reference", n, 20, || {
        simulate_reference(&trace, &ooo4)
    });

    bench("ir_analysis/full_stack", n, 20, || {
        prism_ir::ProgramIr::analyze(&trace)
    });

    let ir = prism_ir::ProgramIr::analyze(&trace);
    bench("bsa_planning/all_four", 0, 20, || AccelPlans::analyze(&ir));

    let data = WorkloadData::prepare(&program).unwrap();
    let core = CoreConfig::ooo2();
    let table = oracle_table(&data, &core);
    for kind in BsaKind::ALL {
        let a = oracle_pick(&table, &data, &[kind]);
        if a.map.is_empty() {
            continue;
        }
        bench(
            &format!("combined_tdg_run/{kind}"),
            data.trace.len() as u64,
            20,
            || run_exocore(&data.trace, &data.ir, &core, &data.plans, &a, &[kind]),
        );
    }

    let w = prism_workloads::by_name("cjpeg-1").expect("registered");
    let data = WorkloadData::prepare(&(w.build)(600)).unwrap();
    bench("oracle_scheduling/cjpeg", 0, 20, || {
        oracle_table(&data, &core)
    });
}
