//! The design-space exploration of the paper's §5: 4 general-purpose cores
//! × 16 BSA subsets = 64 ExoCore design points, evaluated over a workload
//! set with Oracle scheduling.

use std::collections::HashMap;
use std::rc::Rc;

use prism_ir::LoopId;
use prism_tdg::{price_exocore, run_exocore, run_exocore_timing, BsaKind, ExoRunResult, ExoTiming};
use prism_udg::CoreConfig;

use crate::{oracle_pick, oracle_table, WorkloadData};

/// One ExoCore design point: a core plus a subset of the four BSAs.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The general-purpose core.
    pub core: CoreConfig,
    /// The BSAs present (SIMD also enables the core's vector datapath).
    pub bsas: Vec<BsaKind>,
}

impl DesignPoint {
    /// Creates a design point; enabling SIMD switches the core's vector
    /// datapath on (as in the paper's `-S` configurations).
    #[must_use]
    pub fn new(core: CoreConfig, bsas: Vec<BsaKind>) -> Self {
        let core = if bsas.contains(&BsaKind::Simd) {
            core.with_simd()
        } else {
            core
        };
        DesignPoint { core, bsas }
    }

    /// The paper's Fig. 12 label, e.g. `"OOO2-SDN"` or `"IO2"`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.bsas.is_empty() {
            self.core.name.clone()
        } else {
            let mut codes: Vec<char> = self.bsas.iter().map(|b| b.code()).collect();
            codes.sort_unstable_by_key(|c| "SDNT".find(*c));
            format!(
                "{}-{}",
                self.core.name,
                codes.into_iter().collect::<String>()
            )
        }
    }

    /// Total area (core + BSAs), mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let areas = prism_energy::AccelAreas::new();
        // `with_simd` already folded SIMD into the core area.
        let accel: f64 = self
            .bsas
            .iter()
            .filter(|b| **b != BsaKind::Simd)
            .map(|b| match b {
                BsaKind::DpCgra => areas.dp_cgra,
                BsaKind::NsDf => areas.ns_df,
                BsaKind::TraceP => areas.trace_p,
                BsaKind::Simd => 0.0,
            })
            .sum();
        self.core.area_mm2() + accel
    }
}

/// The four Table-4 cores.
#[must_use]
pub fn all_cores() -> Vec<CoreConfig> {
    vec![
        CoreConfig::io2(),
        CoreConfig::ooo2(),
        CoreConfig::ooo4(),
        CoreConfig::ooo6(),
    ]
}

/// All 16 subsets of the four BSAs, in mask order.
#[must_use]
pub fn all_bsa_subsets() -> Vec<Vec<BsaKind>> {
    (0u32..16)
        .map(|mask| {
            BsaKind::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, b)| *b)
                .collect()
        })
        .collect()
}

/// The full 64-point design space (paper Fig. 12).
#[must_use]
pub fn all_design_points() -> Vec<DesignPoint> {
    let mut points = Vec::with_capacity(64);
    for core in all_cores() {
        for bsas in all_bsa_subsets() {
            points.push(DesignPoint::new(core.clone(), bsas));
        }
    }
    points
}

/// Per-workload metrics at one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMetrics {
    /// Workload name.
    pub workload: String,
    /// Total cycles.
    pub cycles: u64,
    /// Total energy (J).
    pub energy: f64,
    /// Fraction of instructions left unaccelerated.
    pub unaccelerated: f64,
    /// Cycles per unit (GPP, SIMD, DP-CGRA, NS-DF, Trace-P).
    pub unit_cycles: [u64; 5],
    /// Energy per unit (J).
    pub unit_energy: [f64; 5],
}

impl WorkloadMetrics {
    /// Extracts metrics from a combined run.
    #[must_use]
    pub fn from_run(run: &ExoRunResult, workload: &str) -> Self {
        WorkloadMetrics {
            workload: workload.to_string(),
            cycles: run.cycles,
            energy: run.energy.total(),
            unaccelerated: run.unaccelerated_fraction(),
            unit_cycles: run.unit_cycles,
            unit_energy: run.unit_energy,
        }
    }
}

/// Aggregated result for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignResult {
    /// Fig. 12 label.
    pub label: String,
    /// Core name.
    pub core: String,
    /// BSA codes present (subset of "SDNT").
    pub bsas: String,
    /// Design area (mm²).
    pub area_mm2: f64,
    /// Per-workload metrics.
    pub per_workload: Vec<WorkloadMetrics>,
}

impl DesignResult {
    /// Geometric-mean speedup over a reference result (matched by workload
    /// name).
    #[must_use]
    pub fn geomean_speedup_over(&self, reference: &DesignResult) -> f64 {
        geomean(self.per_workload.iter().filter_map(|m| {
            reference
                .per_workload
                .iter()
                .find(|r| r.workload == m.workload)
                .map(|r| r.cycles as f64 / m.cycles.max(1) as f64)
        }))
    }

    /// Geometric-mean energy-efficiency gain over a reference result.
    #[must_use]
    pub fn geomean_energy_eff_over(&self, reference: &DesignResult) -> f64 {
        geomean(self.per_workload.iter().filter_map(|m| {
            reference
                .per_workload
                .iter()
                .find(|r| r.workload == m.workload)
                .map(|r| r.energy / m.energy.max(f64::MIN_POSITIVE))
        }))
    }
}

/// Geometric mean of an iterator of positive values (1.0 if empty).
#[must_use]
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Evaluates one design point over a workload set with Oracle scheduling.
///
/// `tables` must hold, per workload, the [`crate::OracleTable`] measured on
/// `point.core`'s *base* configuration (SIMD flag does not change
/// scheduling candidates).
#[must_use]
pub fn evaluate_point(
    data: &[WorkloadData],
    tables: &[crate::OracleTable],
    point: &DesignPoint,
) -> DesignResult {
    assert_eq!(data.len(), tables.len(), "one oracle table per workload");
    let mut per_workload = Vec::with_capacity(data.len());
    for (w, table) in data.iter().zip(tables) {
        let assignment = oracle_pick(table, w, &point.bsas);
        let run = run_exocore(
            &w.trace,
            &w.ir,
            &point.core,
            &w.plans,
            &assignment,
            &point.bsas,
        );
        per_workload.push(WorkloadMetrics::from_run(&run, &w.name));
    }
    DesignResult {
        label: point.label(),
        core: point.core.name.clone(),
        bsas: point.bsas.iter().map(|b| b.code()).collect(),
        area_mm2: point.area_mm2(),
        per_workload,
    }
}

/// Per-workload memo of trace-walk timings, shared across one core's 16
/// BSA subsets. Keyed by everything the timing depends on that varies
/// between subsets: the SIMD datapath flag and the (sorted) Oracle
/// assignment.
type TimingMemo = Vec<HashMap<(bool, Vec<(LoopId, BsaKind)>), Rc<ExoTiming>>>;

/// [`evaluate_point`] through a timing memo: the trace walk
/// ([`run_exocore_timing`]) runs once per distinct (SIMD flag, assignment)
/// pair per workload, and each subset only re-prices the shared timing
/// ([`price_exocore`]). Byte-identical to the direct path — pricing
/// preserves float-operation order — and typically collapses a core's 16
/// subsets to ~5 trace walks, since Oracle scheduling picks the same
/// assignment for many subsets.
#[must_use]
pub fn evaluate_point_composed(
    data: &[WorkloadData],
    tables: &[crate::OracleTable],
    point: &DesignPoint,
    memo: &mut TimingMemo,
) -> DesignResult {
    assert_eq!(data.len(), tables.len(), "one oracle table per workload");
    assert_eq!(data.len(), memo.len(), "one timing memo per workload");
    let mut per_workload = Vec::with_capacity(data.len());
    for ((w, table), cache) in data.iter().zip(tables).zip(memo.iter_mut()) {
        let assignment = oracle_pick(table, w, &point.bsas);
        for &kind in assignment.map.values() {
            assert!(
                point.bsas.contains(&kind),
                "assignment to absent accelerator {kind}"
            );
        }
        let mut pairs: Vec<(LoopId, BsaKind)> =
            assignment.map.iter().map(|(&l, &k)| (l, k)).collect();
        pairs.sort_unstable();
        let timing = cache
            .entry((point.core.has_simd, pairs))
            .or_insert_with(|| {
                Rc::new(run_exocore_timing(
                    &w.trace,
                    &w.ir,
                    &point.core,
                    &w.plans,
                    &assignment,
                ))
            });
        let run = price_exocore(timing, &point.core, &point.bsas);
        per_workload.push(WorkloadMetrics::from_run(&run, &w.name));
    }
    DesignResult {
        label: point.label(),
        core: point.core.name.clone(),
        bsas: point.bsas.iter().map(|b| b.code()).collect(),
        area_mm2: point.area_mm2(),
        per_workload,
    }
}

/// Runs the full exploration: every design point over every workload.
///
/// Returns results in `all_design_points()` order. Oracle tables are
/// measured once per (workload, core) and shared across that core's 16
/// subsets; trace-walk timings are memoized per distinct (SIMD flag,
/// assignment) pair, so each core costs ~5 trace walks instead of 16
/// (byte-identical to [`explore_direct`]).
#[must_use]
pub fn explore(data: &[WorkloadData]) -> Vec<DesignResult> {
    let mut results = Vec::with_capacity(64);
    for core in all_cores() {
        let tables: Vec<crate::OracleTable> = data.iter().map(|w| oracle_table(w, &core)).collect();
        let mut memo: TimingMemo = vec![HashMap::new(); data.len()];
        for bsas in all_bsa_subsets() {
            let point = DesignPoint::new(core.clone(), bsas);
            results.push(evaluate_point_composed(data, &tables, &point, &mut memo));
        }
    }
    results
}

/// [`explore`] without the timing memo: every design point runs the full
/// trace walk (16 runs per core). Kept as the reference path for the
/// composed-equals-direct property test and for benchmarking the memo's
/// speedup.
#[must_use]
pub fn explore_direct(data: &[WorkloadData]) -> Vec<DesignResult> {
    let mut results = Vec::with_capacity(64);
    for core in all_cores() {
        let tables: Vec<crate::OracleTable> = data.iter().map(|w| oracle_table(w, &core)).collect();
        for bsas in all_bsa_subsets() {
            let point = DesignPoint::new(core.clone(), bsas);
            results.push(evaluate_point(data, &tables, &point));
        }
    }
    results
}

/// A point on the performance–energy plane (for frontier extraction,
/// Fig. 3/10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Relative performance (higher = better).
    pub perf: f64,
    /// Relative energy (lower = better).
    pub energy: f64,
}

/// Extracts the Pareto frontier (max perf, min energy) from labeled points,
/// sorted by performance.
#[must_use]
pub fn pareto_frontier(points: &[(String, FrontierPoint)]) -> Vec<(String, FrontierPoint)> {
    let mut sorted: Vec<&(String, FrontierPoint)> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.1.perf
            .partial_cmp(&b.1.perf)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut frontier: Vec<(String, FrontierPoint)> = Vec::new();
    // Walk from highest performance down, keeping points that strictly
    // improve energy.
    let mut best_energy = f64::INFINITY;
    for p in sorted.iter().rev() {
        if p.1.energy < best_energy {
            best_energy = p.1.energy;
            frontier.push((*p).clone());
        }
    }
    frontier.reverse();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_space_has_64_points_with_unique_labels() {
        let points = all_design_points();
        assert_eq!(points.len(), 64);
        let labels: std::collections::HashSet<String> =
            points.iter().map(DesignPoint::label).collect();
        assert_eq!(labels.len(), 64);
        assert!(labels.contains("IO2"));
        assert!(labels.contains("OOO6-SDNT"));
        assert!(labels.contains("OOO2-SDN"));
    }

    #[test]
    fn simd_subset_enables_vector_datapath() {
        let p = DesignPoint::new(CoreConfig::ooo2(), vec![BsaKind::Simd]);
        assert!(p.core.has_simd);
        let q = DesignPoint::new(CoreConfig::ooo2(), vec![BsaKind::NsDf]);
        assert!(!q.core.has_simd);
        assert!(p.area_mm2() > CoreConfig::ooo2().area_mm2());
    }

    #[test]
    fn label_order_is_canonical() {
        let p = DesignPoint::new(
            CoreConfig::io2(),
            vec![BsaKind::TraceP, BsaKind::Simd, BsaKind::NsDf],
        );
        assert_eq!(p.label(), "IO2-SNT");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn composed_explore_is_byte_identical_to_direct() {
        use prism_isa::{ProgramBuilder, Reg};
        let (pa, pb, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (fa, ft) = (Reg::fp(0), Reg::fp(1));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x24000);
        b.init_reg(i, 400);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fmul(ft, fa, fa);
        b.fadd(ft, ft, fa);
        b.fst(ft, pb, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let data = vec![crate::WorkloadData::prepare(&b.build().unwrap()).unwrap()];

        let composed = explore(&data);
        let direct = explore_direct(&data);
        assert_eq!(composed.len(), direct.len());
        // Byte-identical, not just approximately equal: the memoized path
        // must preserve float-operation order exactly.
        assert_eq!(format!("{composed:?}"), format!("{direct:?}"));
    }

    #[test]
    fn pareto_frontier_filters_dominated_points() {
        let pts = vec![
            (
                "a".into(),
                FrontierPoint {
                    perf: 1.0,
                    energy: 1.0,
                },
            ),
            (
                "b".into(),
                FrontierPoint {
                    perf: 2.0,
                    energy: 0.9,
                },
            ), // dominates a
            (
                "c".into(),
                FrontierPoint {
                    perf: 3.0,
                    energy: 1.5,
                },
            ),
            (
                "d".into(),
                FrontierPoint {
                    perf: 2.5,
                    energy: 2.0,
                },
            ), // dominated by c
        ];
        let f = pareto_frontier(&pts);
        let names: Vec<&str> = f.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }
}
