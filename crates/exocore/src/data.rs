//! Per-workload prepared data: trace, IR, and accelerator plans — computed
//! once and shared across every design point of the exploration.

use prism_ir::ProgramIr;
use prism_sim::{Trace, TraceError, TracerConfig};
use prism_tdg::AccelPlans;

/// A workload prepared for evaluation: the recorded trace, its
/// reconstructed IR, and all four BSAs' analysis plans.
#[derive(Debug, Clone)]
pub struct WorkloadData {
    /// Workload name.
    pub name: String,
    /// Recorded dynamic trace.
    pub trace: Trace,
    /// Reconstructed program IR.
    pub ir: ProgramIr,
    /// BSA analysis plans.
    pub plans: AccelPlans,
}

impl WorkloadData {
    /// Traces `program` with the default tracer and runs the analysis
    /// stack.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the program fails validation or execution.
    pub fn prepare(program: &prism_isa::Program) -> Result<Self, TraceError> {
        WorkloadData::prepare_with(program, &TracerConfig::default())
    }

    /// Like [`WorkloadData::prepare`] with an explicit tracer config.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the program fails validation or execution.
    pub fn prepare_with(
        program: &prism_isa::Program,
        config: &TracerConfig,
    ) -> Result<Self, TraceError> {
        Ok(WorkloadData::from_trace(prism_sim::trace_with(
            program, config,
        )?))
    }

    /// Runs the analysis stack over an already-recorded `trace` (e.g. one
    /// accumulated chunk-by-chunk from a [`prism_sim::TraceSource`]).
    ///
    /// The IR reconstruction (Ball–Larus path profiling) genuinely needs
    /// random access over the whole stream, so this is the one place the
    /// pipeline materializes a trace.
    #[must_use]
    pub fn from_trace(trace: Trace) -> Self {
        let ir = ProgramIr::analyze(&trace);
        let plans = AccelPlans::analyze(&ir);
        WorkloadData {
            name: trace.program.name.clone(),
            trace,
            ir,
            plans,
        }
    }
}
