//! # prism-exocore
//!
//! The ExoCore organization and its design-space exploration — §3–§5 of
//! *Analyzing Behavior Specialized Acceleration* (ASPLOS 2016).
//!
//! An ExoCore couples a general-purpose core with several behavior
//! specialized accelerators sharing the cache hierarchy; execution
//! migrates between units per program region. This crate provides:
//!
//! * [`WorkloadData`] — trace + IR + plans, prepared once per workload,
//! * [`oracle_schedule`] / [`oracle_table`] / [`oracle_pick`] — the
//!   paper's Oracle scheduler (measured energy-delay, ≤10% region
//!   slowdown),
//! * [`amdahl_schedule`] — the Amdahl-tree scheduler of §3.3 (static
//!   estimates, no oracle information),
//! * [`explore`] / [`DesignPoint`] — the 64-point design space of Fig. 12,
//! * [`pareto_frontier`] — frontier extraction for Fig. 3/10,
//! * [`switching_timeline`] — the Fig. 14 dynamic-switching windows.
//!
//! # Examples
//!
//! ```
//! use prism_exocore::{oracle_schedule, WorkloadData};
//! use prism_tdg::{run_exocore, BsaKind};
//! use prism_udg::CoreConfig;
//!
//! let program = prism_workloads::by_name("stencil").unwrap().build_default();
//! let data = WorkloadData::prepare(&program)?;
//! let core = CoreConfig::ooo2();
//! let schedule = oracle_schedule(&data, &core, &BsaKind::ALL);
//! let run = run_exocore(&data.trace, &data.ir, &core, &data.plans, &schedule, &BsaKind::ALL);
//! assert!(run.cycles > 0);
//! # Ok::<(), prism_sim::TraceError>(())
//! ```

#![warn(missing_docs)]

mod data;
mod dse;
mod schedule;
mod timeline;

pub use data::WorkloadData;
pub use dse::{
    all_bsa_subsets, all_cores, all_design_points, evaluate_point, evaluate_point_composed,
    explore, explore_direct, geomean, pareto_frontier, DesignPoint, DesignResult, FrontierPoint,
    WorkloadMetrics,
};
pub use schedule::{
    amdahl_schedule, oracle_pick, oracle_schedule, oracle_table, oracle_table_budgeted,
    CandidateGain, OracleTable, MAX_REGION_SLOWDOWN,
};
pub use timeline::{switching_timeline, WindowPoint};
