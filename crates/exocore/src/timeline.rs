//! Dynamic-switching timelines (the paper's Fig. 14): windowed speedup of
//! an ExoCore over its plain core, annotated with the unit that dominated
//! each window.

use prism_tdg::{run_exocore, Assignment, BsaKind, ExecUnit};
use prism_udg::{CoreConfig, CoreModel, MemDepTracker, RegTimes};

use crate::WorkloadData;

/// One timeline window.
#[derive(Debug, Clone)]
pub struct WindowPoint {
    /// Last original-trace instruction of the window.
    pub end_seq: u64,
    /// Baseline cycles consumed by the window.
    pub base_cycles: u64,
    /// ExoCore cycles consumed by the window.
    pub exo_cycles: u64,
    /// Speedup within the window.
    pub speedup: f64,
    /// Unit that executed the most instructions in the window.
    pub dominant_unit: ExecUnit,
}

/// Baseline per-window cycle counts: runs the plain core model, sampling
/// the clock at every `window` retired instructions.
#[must_use]
fn baseline_window_cycles(data: &WorkloadData, core: &CoreConfig, window: u64) -> Vec<u64> {
    let trace = &data.trace;
    let mut model = CoreModel::new(core);
    let mut regs = RegTimes::new();
    let mut mems = MemDepTracker::new();
    let mut samples = Vec::new();
    for d in &trace.insts {
        let mi = prism_udg::model_inst_for(&trace.program, d, &regs, &mems);
        let t = model.issue(&mi);
        regs.retire(trace.static_inst(d), d.seq, t.complete);
        if let Some(m) = &d.mem {
            if m.is_store {
                mems.record_store(m.addr, m.width, t.complete);
            }
        }
        if (d.seq + 1) % window == 0 {
            samples.push(model.now());
        }
    }
    samples.push(model.now());
    samples
}

/// Produces the Fig. 14 switching timeline for one workload: per-window
/// ExoCore speedup and dominant unit.
#[must_use]
pub fn switching_timeline(
    data: &WorkloadData,
    core: &CoreConfig,
    assignment: &Assignment,
    accels: &[BsaKind],
    window: u64,
) -> Vec<WindowPoint> {
    let window = window.max(1);
    let base = baseline_window_cycles(data, core, window);
    let run = run_exocore(&data.trace, &data.ir, core, &data.plans, assignment, accels);

    // Build contiguous segments from the region samples: each covers
    // [start_seq, end_seq] over [start_cycle, end_cycle] on one unit.
    struct Segment {
        start_seq: u64,
        end_seq: u64,
        start_cycle: u64,
        end_cycle: u64,
        unit: ExecUnit,
    }
    let mut segments: Vec<Segment> = Vec::with_capacity(run.timeline.len());
    let (mut seq_cursor, mut cycle_cursor) = (0u64, 0u64);
    for s in &run.timeline {
        segments.push(Segment {
            start_seq: seq_cursor,
            end_seq: s.end_seq,
            start_cycle: cycle_cursor,
            end_cycle: s.end_cycle.max(cycle_cursor),
            unit: s.unit,
        });
        seq_cursor = s.end_seq + 1;
        cycle_cursor = s.end_cycle.max(cycle_cursor);
    }
    // Interpolated ExoCore clock at the end of instruction `seq`.
    let exo_clock = |seq: u64| -> u64 {
        match segments.iter().find(|g| seq <= g.end_seq) {
            Some(g) => {
                let len = (g.end_seq - g.start_seq + 1).max(1);
                let into = seq.saturating_sub(g.start_seq) + 1;
                g.start_cycle + (g.end_cycle - g.start_cycle) * into / len
            }
            None => cycle_cursor,
        }
    };

    let total = data.trace.len() as u64;
    let n_windows = total.div_ceil(window);
    let mut points = Vec::with_capacity(n_windows as usize);
    let mut prev_exo = 0u64;
    let mut prev_base = 0u64;

    for wdx in 0..n_windows {
        let win_start = wdx * window;
        let end_seq = ((wdx + 1) * window - 1).min(total - 1);

        // Unit with the most instruction coverage in this window.
        let mut unit_cover = [0u64; ExecUnit::COUNT];
        for g in &segments {
            let lo = g.start_seq.max(win_start);
            let hi = g.end_seq.min(end_seq);
            if lo <= hi {
                unit_cover[g.unit as usize] += hi - lo + 1;
            }
        }
        let dominant_unit = ExecUnit::ALL
            .into_iter()
            .max_by_key(|u| (unit_cover[*u as usize], ExecUnit::COUNT - *u as usize))
            .unwrap_or(ExecUnit::Gpp);

        let here = exo_clock(end_seq);
        let exo_cycles = here.saturating_sub(prev_exo);
        prev_exo = here;
        let base_here = base[(wdx as usize).min(base.len() - 1)];
        let base_cycles = base_here.saturating_sub(prev_base);
        prev_base = base_here;

        let speedup = if exo_cycles == 0 {
            1.0
        } else {
            base_cycles as f64 / exo_cycles as f64
        };
        points.push(WindowPoint {
            end_seq,
            base_cycles,
            exo_cycles,
            speedup,
            dominant_unit,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle_schedule;
    use prism_isa::{ProgramBuilder, Reg};

    /// Two-phase program: vectorizable streaming then branchy integer code.
    fn two_phase() -> WorkloadData {
        let mut b = ProgramBuilder::new("twophase");
        let (p, q, i, t, x) = (
            Reg::int(1),
            Reg::int(2),
            Reg::int(3),
            Reg::int(4),
            Reg::int(5),
        );
        let (fa, fb) = (Reg::fp(0), Reg::fp(1));
        b.init_reg(p, 0x10000);
        b.init_reg(q, 0x24000);
        b.init_reg(i, 400);
        let phase1 = b.bind_new_label();
        b.fld(fa, p, 0);
        b.fmul(fb, fa, fa);
        b.fst(fb, q, 0);
        b.addi(p, p, 8);
        b.addi(q, q, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, phase1);
        b.init_reg(x, 99991);
        b.li(i, 400);
        let phase2 = b.bind_new_label();
        let skip = b.label();
        b.andi(t, x, 3);
        b.beq_label(t, Reg::ZERO, skip);
        b.shri(t, x, 2);
        b.xor(x, x, t);
        b.bind(skip);
        b.addi(x, x, 7);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, phase2);
        b.halt();
        WorkloadData::prepare(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn timeline_covers_whole_trace_and_shows_switching() {
        let data = two_phase();
        let core = CoreConfig::ooo2();
        let a = oracle_schedule(&data, &core, &prism_tdg::BsaKind::ALL);
        let pts = switching_timeline(&data, &core, &a, &prism_tdg::BsaKind::ALL, 500);
        assert!(!pts.is_empty());
        assert_eq!(pts.last().unwrap().end_seq, data.trace.len() as u64 - 1);
        // Phase 1 should be accelerated (if the oracle chose anything).
        if !a.map.is_empty() {
            let units: std::collections::HashSet<_> = pts.iter().map(|p| p.dominant_unit).collect();
            assert!(
                units.len() >= 2,
                "expected switching between units: {units:?}"
            );
        }
        for p in &pts {
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
        }
    }

    #[test]
    fn baseline_windows_are_monotone() {
        let data = two_phase();
        let cy = baseline_window_cycles(&data, &CoreConfig::ooo2(), 300);
        assert!(cy.windows(2).all(|w| w[0] <= w[1]));
        assert!(*cy.last().unwrap() > 0);
    }
}
