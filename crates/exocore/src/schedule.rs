//! BSA selection: the Oracle scheduler and the Amdahl-tree scheduler of
//! the paper's §3.3 / §4.

use prism_ir::LoopId;
use prism_tdg::{run_exocore, Assignment, BsaKind};
use prism_udg::{
    try_simulate_trace, BudgetExceeded, CoreConfig, CoreRun, ExecBudget, FuelMeter, NODES_PER_INST,
};

use crate::WorkloadData;

/// Maximum per-region slowdown the Oracle accepts (paper §4: "no
/// individual region should reduce the performance by more than 10%").
pub const MAX_REGION_SLOWDOWN: f64 = 0.10;

/// One measured Oracle candidate: assigning `kind` to loop `lid`.
#[derive(Debug, Clone)]
pub struct CandidateGain {
    /// Target loop.
    pub lid: LoopId,
    /// Candidate BSA.
    pub kind: BsaKind,
    /// Whole-program cycles with only this assignment active.
    pub cycles: u64,
    /// Whole-program energy with only this assignment active (J).
    pub energy: f64,
    /// Energy-delay improvement over the baseline (positive = better).
    pub ed_gain: f64,
    /// Whether the region's slowdown stays within the 10% bound.
    pub perf_ok: bool,
}

/// The Oracle's measurement table for one (workload, core) pair: every
/// candidate evaluated in isolation against the plain-core baseline.
#[derive(Debug, Clone)]
pub struct OracleTable {
    /// Plain-core baseline run.
    pub baseline: CoreRun,
    /// Measured candidates.
    pub candidates: Vec<CandidateGain>,
}

/// Builds the Oracle table: one combined-TDG run per (loop, BSA) plan.
///
/// This is the "based on past execution characteristics" measurement the
/// paper's Oracle uses.
#[must_use]
pub fn oracle_table(data: &WorkloadData, core: &CoreConfig) -> OracleTable {
    oracle_table_budgeted(data, core, &ExecBudget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// Charges one whole-trace evaluation (µDG nodes for every dynamic
/// instruction) against `meter`.
fn charge_run(meter: &mut FuelMeter, trace_len: usize) -> Result<(), BudgetExceeded> {
    meter.charge((trace_len as u64).saturating_mul(NODES_PER_INST))
}

/// [`oracle_table`] under an [`ExecBudget`].
///
/// The budget covers the whole table: the baseline run plus one
/// combined-TDG run per (loop, BSA) candidate, each charged at
/// [`NODES_PER_INST`] nodes per dynamic instruction. Workloads with many
/// candidate loops cost proportionally more, which is exactly what a fuel
/// cap should capture.
///
/// Every run here goes through the windowed µDG engine
/// ([`try_simulate_trace`] / `run_exocore`), so auxiliary timing state is
/// O(window), not O(trace) — the table walks the trace, it never copies
/// it.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] as soon as the next run would not fit.
pub fn oracle_table_budgeted(
    data: &WorkloadData,
    core: &CoreConfig,
    budget: &ExecBudget,
) -> Result<OracleTable, BudgetExceeded> {
    let mut meter = budget.meter();
    charge_run(&mut meter, data.trace.len())?;
    let baseline = try_simulate_trace(&data.trace, core, &ExecBudget::unlimited())
        .expect("unlimited budget cannot trip");
    let base_ed = baseline.cycles as f64 * baseline.energy.total();
    let mut candidates = Vec::new();
    for kind in BsaKind::ALL {
        let lids: Vec<LoopId> = match kind {
            BsaKind::Simd => data.plans.simd.keys().copied().collect(),
            BsaKind::DpCgra => data.plans.dp_cgra.keys().copied().collect(),
            BsaKind::NsDf => data.plans.ns_df.keys().copied().collect(),
            BsaKind::TraceP => data.plans.trace_p.keys().copied().collect(),
        };
        for lid in lids {
            let mut a = Assignment::none();
            a.set(lid, kind);
            charge_run(&mut meter, data.trace.len())?;
            let run = run_exocore(&data.trace, &data.ir, core, &data.plans, &a, &[kind]);
            let ed = run.cycles as f64 * run.energy.total();
            // Region share of baseline time, approximated by its dynamic-
            // instruction share.
            let region_share =
                data.ir.loops.loops[lid as usize].dyn_insts as f64 / data.trace.len().max(1) as f64;
            let slowdown = run.cycles as f64 - baseline.cycles as f64;
            let allowed = MAX_REGION_SLOWDOWN * region_share * baseline.cycles as f64;
            candidates.push(CandidateGain {
                lid,
                kind,
                cycles: run.cycles,
                energy: run.energy.total(),
                ed_gain: base_ed - ed,
                perf_ok: slowdown <= allowed.max(1.0),
            });
        }
    }
    Ok(OracleTable {
        baseline,
        candidates,
    })
}

/// Picks the Oracle assignment from a measured table, restricted to the
/// `enabled` BSAs: best energy-delay first, greedy non-overlapping.
#[must_use]
pub fn oracle_pick(table: &OracleTable, data: &WorkloadData, enabled: &[BsaKind]) -> Assignment {
    let mut ranked: Vec<&CandidateGain> = table
        .candidates
        .iter()
        .filter(|c| enabled.contains(&c.kind) && c.perf_ok && c.ed_gain > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.ed_gain
            .partial_cmp(&a.ed_gain)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assignment = Assignment::none();
    let mut taken: Vec<LoopId> = Vec::new();
    let overlaps = |a: LoopId, b: LoopId| -> bool {
        let anc = |mut x: LoopId, y: LoopId| loop {
            if x == y {
                return true;
            }
            match data.ir.loops.loops[x as usize].parent {
                Some(p) => x = p,
                None => return false,
            }
        };
        anc(a, b) || anc(b, a)
    };
    for c in ranked {
        if taken.iter().any(|&t| overlaps(t, c.lid)) {
            continue;
        }
        assignment.set(c.lid, c.kind);
        taken.push(c.lid);
    }
    assignment
}

/// Convenience: build the table and pick in one call.
#[must_use]
pub fn oracle_schedule(data: &WorkloadData, core: &CoreConfig, enabled: &[BsaKind]) -> Assignment {
    oracle_pick(&oracle_table(data, core), data, enabled)
}

/// The Amdahl-tree scheduler (paper §3.3, Fig. 9): a bottom-up traversal
/// of the loop tree applying Amdahl's law with each BSA's *static* speedup
/// estimate — what a profile-guided compiler could do without oracle runs.
#[must_use]
pub fn amdahl_schedule(data: &WorkloadData, core: &CoreConfig, enabled: &[BsaKind]) -> Assignment {
    let loops = &data.ir.loops.loops;
    let n = loops.len();
    // Process smallest-body loops first so children are solved before
    // parents.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| loops[i].blocks.len());

    // best_time[i]: estimated time (in dynamic-instruction units) for the
    // subtree rooted at loop i; choice[i]: the BSA assigned at i, if any.
    let mut best_time: Vec<f64> = loops.iter().map(|l| l.dyn_insts as f64).collect();
    let mut choice: Vec<Option<BsaKind>> = vec![None; n];

    // Width of the host core scales BSA appeal: a wide OOO core leaves
    // less on the table (paper Fig. 12's trend).
    let core_strength = f64::from(core.width).sqrt();

    for &i in &order {
        let l = &loops[i];
        let child_insts: u64 = l
            .children
            .iter()
            .map(|&c| loops[c as usize].dyn_insts)
            .sum();
        let child_best: f64 = l.children.iter().map(|&c| best_time[c as usize]).sum();
        let own = l.dyn_insts.saturating_sub(child_insts) as f64;
        let keep = own + child_best;

        let mut best = keep;
        let mut pick = None;
        for kind in enabled {
            if let Some(est) = data.plans.est_speedup(*kind, l.id) {
                let effective = (est / core_strength).max(0.6);
                let t = l.dyn_insts as f64 / effective;
                if t < best {
                    best = t;
                    pick = Some(*kind);
                }
            }
        }
        best_time[i] = best;
        choice[i] = pick;
    }

    // Emit assignments top-down: an assigned ancestor suppresses its
    // descendants.
    let mut assignment = Assignment::none();
    let mut order_desc = order;
    order_desc.reverse(); // largest (outermost) first
    'outer: for &i in &order_desc {
        if choice[i].is_none() {
            continue;
        }
        let mut cur = loops[i].parent;
        while let Some(p) = cur {
            if assignment.map.contains_key(&p) {
                continue 'outer;
            }
            cur = loops[p as usize].parent;
        }
        assignment.set(loops[i].id, choice[i].expect("checked"));
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{Program, ProgramBuilder, Reg};

    fn dp_kernel(n: i64) -> Program {
        let (pa, pb, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (fa, ft) = (Reg::fp(0), Reg::fp(1));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x24000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fmul(ft, fa, fa);
        b.fadd(ft, ft, fa);
        b.fst(ft, pb, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn oracle_picks_something_profitable_on_dp_code() {
        let data = WorkloadData::prepare(&dp_kernel(600)).unwrap();
        let core = CoreConfig::ooo2();
        let table = oracle_table(&data, &core);
        assert!(!table.candidates.is_empty());
        let a = oracle_pick(&table, &data, &BsaKind::ALL);
        assert!(
            !a.map.is_empty(),
            "oracle found nothing on a vectorizable loop"
        );
        // And the pick actually beats the baseline on energy-delay.
        let run = run_exocore(&data.trace, &data.ir, &core, &data.plans, &a, &BsaKind::ALL);
        let base_ed = table.baseline.cycles as f64 * table.baseline.energy.total();
        let ed = run.cycles as f64 * run.energy.total();
        assert!(
            ed < base_ed,
            "oracle pick must improve ED: {ed} vs {base_ed}"
        );
    }

    #[test]
    fn oracle_respects_enabled_subset() {
        let data = WorkloadData::prepare(&dp_kernel(600)).unwrap();
        let table = oracle_table(&data, &CoreConfig::ooo2());
        let only_nsdf = oracle_pick(&table, &data, &[BsaKind::NsDf]);
        for kind in only_nsdf.map.values() {
            assert_eq!(*kind, BsaKind::NsDf);
        }
        let none = oracle_pick(&table, &data, &[]);
        assert!(none.map.is_empty());
    }

    #[test]
    fn oracle_table_budget_trips_before_candidates() {
        let data = WorkloadData::prepare(&dp_kernel(600)).unwrap();
        let core = CoreConfig::ooo2();
        // Enough for the baseline run but not for the first candidate.
        let one_run = ExecBudget::for_trace_insts(data.trace.len() as u64, 1);
        let err = oracle_table_budgeted(&data, &core, &one_run)
            .expect_err("one-run budget cannot cover the candidate sweep");
        assert!(err.used > err.max_nodes);
        // A generous budget reproduces the unbudgeted table.
        let full = oracle_table(&data, &core);
        let roomy =
            ExecBudget::for_trace_insts(data.trace.len() as u64, full.candidates.len() as u64 + 1);
        let budgeted = oracle_table_budgeted(&data, &core, &roomy).expect("roomy budget");
        assert_eq!(budgeted.candidates.len(), full.candidates.len());
        assert_eq!(budgeted.baseline.cycles, full.baseline.cycles);
    }

    #[test]
    fn amdahl_schedule_is_well_formed_and_nonempty() {
        let data = WorkloadData::prepare(&dp_kernel(600)).unwrap();
        let a = amdahl_schedule(&data, &CoreConfig::ooo2(), &BsaKind::ALL);
        assert!(a.is_well_formed(&data.ir));
        assert!(!a.map.is_empty());
    }

    #[test]
    fn amdahl_runs_without_oracle_information() {
        // The Amdahl schedule must be executable (every assignment has a
        // plan) and complete without panics on an irregular workload too.
        let (x, i, t) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("irr");
        b.init_reg(x, 123456789);
        b.init_reg(i, 600);
        let head = b.bind_new_label();
        let skip = b.label();
        b.andi(t, x, 3);
        b.beq_label(t, Reg::ZERO, skip);
        b.shri(t, x, 2);
        b.xor(x, x, t);
        b.bind(skip);
        b.addi(x, x, 7);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let data = WorkloadData::prepare(&b.build().unwrap()).unwrap();
        let core = CoreConfig::ooo2();
        let a = amdahl_schedule(&data, &core, &BsaKind::ALL);
        let _ = run_exocore(&data.trace, &data.ir, &core, &data.plans, &a, &BsaKind::ALL);
    }
}
