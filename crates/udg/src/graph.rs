//! The dependence-graph engine.
//!
//! µDG nodes are inserted in topological (program) order; each node's time
//! is the longest path to it, computed incrementally from its incoming
//! edges at insertion. Because times are finalized at insertion, the graph
//! needs to store only one `u64` per node — multi-million-instruction
//! traces are cheap, exactly the property the paper relies on for its
//! windowed transformation approach.
//!
//! With [`DepGraph::with_tracking`], each node additionally records which
//! incoming edge determined its time, so the critical path can be walked
//! backwards — the paper's Appendix A recommends exactly this ("examining
//! which edges are on the critical path") for validating new BSA models.

/// Identifies a node in a [`DepGraph`] (insertion index).
pub type NodeId = u64;

/// Classification of µDG edges, for critical-path attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Fetch bandwidth: `F[i-w] → F[i]`.
    FetchBw,
    /// Front-end depth: `F → D`.
    FrontEnd,
    /// Dispatch bandwidth: `D[i-w] → D[i]`.
    DispatchBw,
    /// ROB occupancy: `C[i-R] → D[i]`.
    RobFull,
    /// Issue-window occupancy: `E[i-W] → D[i]`.
    WindowFull,
    /// Dispatch-to-issue: `D → E`.
    DispatchExec,
    /// Register data dependence: `P[prod] → E[cons]`.
    DataDep,
    /// Store→load memory dependence.
    MemDep,
    /// Execution latency: `E → P`.
    Exec,
    /// Completion-to-commit: `P → C`.
    Complete,
    /// Commit bandwidth / in-order commit: `C[i-w] → C[i]`.
    CommitBw,
    /// In-order issue constraint (in-order cores).
    InOrderIssue,
    /// Branch mispredict: `P[br] → F[next]`.
    Mispredict,
    /// Structural hazard: FU or cache-port contention.
    Resource,
    /// Accelerator pipelining (initiation interval / in-order completion).
    AccelPipe,
    /// Core↔accelerator communication or live-value transfer.
    AccelComm,
    /// Accelerator configuration stall.
    AccelConfig,
    /// Serialized compound-FU execution (NS-DF / Trace-P).
    AccelCfu,
    /// Writeback-bus capacity (NS-DF / Trace-P).
    AccelBus,
    /// Trace mispeculation replay.
    AccelReplay,
}

impl EdgeKind {
    /// Number of edge kinds, for dense per-kind tables
    /// (e.g. [`BindingCounts`](crate::BindingCounts)).
    pub const COUNT: usize = 20;

    /// Every edge kind, in discriminant order.
    pub const ALL: [EdgeKind; EdgeKind::COUNT] = [
        EdgeKind::FetchBw,
        EdgeKind::FrontEnd,
        EdgeKind::DispatchBw,
        EdgeKind::RobFull,
        EdgeKind::WindowFull,
        EdgeKind::DispatchExec,
        EdgeKind::DataDep,
        EdgeKind::MemDep,
        EdgeKind::Exec,
        EdgeKind::Complete,
        EdgeKind::CommitBw,
        EdgeKind::InOrderIssue,
        EdgeKind::Mispredict,
        EdgeKind::Resource,
        EdgeKind::AccelPipe,
        EdgeKind::AccelComm,
        EdgeKind::AccelConfig,
        EdgeKind::AccelCfu,
        EdgeKind::AccelBus,
        EdgeKind::AccelReplay,
    ];
}

/// Per-node provenance when tracking is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// The predecessor that determined this node's time.
    pub pred: NodeId,
    /// The kind of the determining edge.
    pub kind: EdgeKind,
}

/// An append-only dependence graph with incremental longest-path times.
///
/// # Examples
///
/// ```
/// use prism_udg::{DepGraph, EdgeKind};
///
/// let mut g = DepGraph::new();
/// let a = g.add_node(0);
/// let b = g.add_node(0);
/// let c = g.add_node_after(&[(a, 3, EdgeKind::DataDep), (b, 1, EdgeKind::DataDep)]);
/// assert_eq!(g.time(c), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    times: Vec<u64>,
    provenance: Option<Vec<Option<Provenance>>>,
}

impl DepGraph {
    /// Creates a graph without critical-path tracking.
    #[must_use]
    pub fn new() -> Self {
        DepGraph::default()
    }

    /// Creates a graph that records, per node, the edge that determined its
    /// time (enables [`DepGraph::critical_path`]).
    #[must_use]
    pub fn with_tracking() -> Self {
        DepGraph {
            times: Vec::new(),
            provenance: Some(Vec::new()),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.times.len() as u64
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Adds a node whose time is exactly `time` (no incoming edges).
    pub fn add_node(&mut self, time: u64) -> NodeId {
        self.times.push(time);
        if let Some(p) = &mut self.provenance {
            p.push(None);
        }
        self.len() - 1
    }

    /// Adds a node whose time is the max over `(pred, latency, kind)`
    /// incoming edges, with a floor of zero.
    ///
    /// # Panics
    ///
    /// Panics if any predecessor id is not yet in the graph (insertion must
    /// be topological).
    pub fn add_node_after(&mut self, edges: &[(NodeId, u64, EdgeKind)]) -> NodeId {
        self.add_node_after_min(0, edges)
    }

    /// Like [`DepGraph::add_node_after`] with an additional lower bound
    /// `floor` on the node's time (used for absolute constraints such as
    /// resource grants).
    ///
    /// # Panics
    ///
    /// Panics if any predecessor id is not yet in the graph.
    pub fn add_node_after_min(&mut self, floor: u64, edges: &[(NodeId, u64, EdgeKind)]) -> NodeId {
        let mut best = floor;
        let mut prov: Option<Provenance> = None;
        for &(pred, latency, kind) in edges {
            let t = self.time(pred) + latency;
            if t > best || (t == best && prov.is_none() && t > floor) {
                best = t;
                prov = Some(Provenance { pred, kind });
            }
        }
        self.times.push(best);
        if let Some(p) = &mut self.provenance {
            p.push(prov);
        }
        self.len() - 1
    }

    /// The longest-path time of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn time(&self, id: NodeId) -> u64 {
        self.times[id as usize]
    }

    /// Raises `id`'s recorded time to at least `time` (used when a resource
    /// grant retro-actively delays a node being constructed).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the most recently inserted node — earlier
    /// nodes' times may already have been consumed.
    pub fn delay_last(&mut self, id: NodeId, time: u64) {
        assert_eq!(id, self.len() - 1, "only the newest node may be delayed");
        let t = &mut self.times[id as usize];
        if time > *t {
            *t = time;
        }
    }

    /// Walks the recorded critical path backwards from `id`.
    ///
    /// Returns `(node, determining edge kind)` pairs from `id` back to a
    /// source node. Empty if tracking was not enabled.
    #[must_use]
    pub fn critical_path(&self, id: NodeId) -> Vec<(NodeId, EdgeKind)> {
        let Some(prov) = &self.provenance else {
            return Vec::new();
        };
        let mut path = Vec::new();
        let mut cur = id;
        while let Some(p) = prov[cur as usize] {
            path.push((cur, p.kind));
            cur = p.pred;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_path_is_incremental_max() {
        let mut g = DepGraph::new();
        let a = g.add_node(5);
        let b = g.add_node(0);
        let c = g.add_node_after(&[(a, 2, EdgeKind::DataDep), (b, 10, EdgeKind::DataDep)]);
        assert_eq!(g.time(c), 10);
        let d = g.add_node_after(&[(c, 1, EdgeKind::Exec)]);
        assert_eq!(g.time(d), 11);
    }

    #[test]
    fn floor_applies() {
        let mut g = DepGraph::new();
        let a = g.add_node(0);
        let b = g.add_node_after_min(7, &[(a, 2, EdgeKind::DataDep)]);
        assert_eq!(g.time(b), 7);
        let c = g.add_node_after_min(1, &[(b, 2, EdgeKind::DataDep)]);
        assert_eq!(g.time(c), 9);
    }

    #[test]
    fn delay_last_raises_time() {
        let mut g = DepGraph::new();
        let a = g.add_node(3);
        g.delay_last(a, 8);
        assert_eq!(g.time(a), 8);
        g.delay_last(a, 2); // lowering is a no-op
        assert_eq!(g.time(a), 8);
    }

    #[test]
    #[should_panic(expected = "newest node")]
    fn delay_non_last_panics() {
        let mut g = DepGraph::new();
        let a = g.add_node(0);
        let _b = g.add_node(0);
        g.delay_last(a, 5);
    }

    #[test]
    fn critical_path_walk() {
        let mut g = DepGraph::with_tracking();
        let a = g.add_node(0);
        let b = g.add_node_after(&[(a, 4, EdgeKind::Exec)]);
        let c = g.add_node_after(&[(b, 1, EdgeKind::DataDep), (a, 2, EdgeKind::FetchBw)]);
        let path = g.critical_path(c);
        assert_eq!(path, vec![(c, EdgeKind::DataDep), (b, EdgeKind::Exec)]);
    }

    #[test]
    fn critical_path_empty_without_tracking() {
        let mut g = DepGraph::new();
        let a = g.add_node(0);
        let b = g.add_node_after(&[(a, 1, EdgeKind::Exec)]);
        assert!(g.critical_path(b).is_empty());
    }

    #[test]
    fn zero_latency_edges_tie_break_to_floor() {
        let mut g = DepGraph::with_tracking();
        let a = g.add_node(0);
        // Edge lands exactly on the floor of 0: floor wins the tie, so no
        // provenance is recorded (the node is effectively a source).
        let b = g.add_node_after(&[(a, 0, EdgeKind::DataDep)]);
        assert_eq!(g.time(b), 0);
        assert!(g.critical_path(b).is_empty());
    }
}
