//! Windowed cycle-indexed resource tables.
//!
//! The paper (§2.7): "the graph representation is itself constraining, in
//! particular for modeling resource contention. To get around this, we keep
//! a windowed cycle-indexed data structure to record which TDG node 'holds'
//! which resource. The consequence is that resources are preferentially
//! given in instruction order." This is that data structure.

/// Tracks per-cycle occupancy of a multi-unit resource (FUs, cache ports,
/// issue slots) over a sliding cycle window.
///
/// # Examples
///
/// ```
/// use prism_udg::ResourceTable;
///
/// let mut alus = ResourceTable::new(2); // two ALUs
/// assert_eq!(alus.acquire(10), 10);
/// assert_eq!(alus.acquire(10), 10);
/// assert_eq!(alus.acquire(10), 11); // third op in cycle 10 slips
/// ```
#[derive(Debug, Clone)]
pub struct ResourceTable {
    units: u32,
    base: u64,
    ring: Vec<u16>,
}

/// Cycle window tracked per resource; requests older than this relative to
/// the newest grant are clamped (instruction-order preference).
const WINDOW: usize = 16_384;

impl ResourceTable {
    /// Creates a table for a resource with `units` identical instances.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    #[must_use]
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "resource must have at least one unit");
        ResourceTable {
            units,
            base: 0,
            ring: vec![0; WINDOW],
        }
    }

    /// Number of identical units.
    #[must_use]
    pub fn units(&self) -> u32 {
        self.units
    }

    /// Grants the resource for one cycle at the earliest cycle ≥ `earliest`
    /// with a free unit, and returns that cycle.
    ///
    /// Requests that fall before the sliding window are clamped to its
    /// start — resources are granted in instruction order, as in the paper.
    pub fn acquire(&mut self, earliest: u64) -> u64 {
        let mut cycle = earliest.max(self.base);
        // Slide the window forward if the request is beyond it.
        if cycle >= self.base + WINDOW as u64 {
            let new_base = cycle - (WINDOW as u64) / 2;
            self.slide_to(new_base);
        }
        loop {
            if cycle >= self.base + WINDOW as u64 {
                let new_base = cycle - (WINDOW as u64) / 2;
                self.slide_to(new_base);
            }
            let slot = ((cycle - self.base) as usize) % WINDOW;
            if u32::from(self.ring[slot]) < self.units {
                self.ring[slot] += 1;
                return cycle;
            }
            cycle += 1;
        }
    }

    fn slide_to(&mut self, new_base: u64) {
        debug_assert!(new_base >= self.base);
        let shift = (new_base - self.base) as usize;
        if shift >= WINDOW {
            self.ring.iter_mut().for_each(|c| *c = 0);
        } else {
            // Clear the cycles that fall out of the window; the ring is a
            // plain rotation so clear the first `shift` logical slots.
            for i in 0..shift {
                let slot = ((self.base as usize) + i) % WINDOW;
                self.ring[slot] = 0;
            }
        }
        self.base = new_base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_serializes() {
        let mut r = ResourceTable::new(1);
        assert_eq!(r.acquire(5), 5);
        assert_eq!(r.acquire(5), 6);
        assert_eq!(r.acquire(5), 7);
        assert_eq!(r.acquire(100), 100);
    }

    #[test]
    fn multi_unit_shares_cycles() {
        let mut r = ResourceTable::new(3);
        assert_eq!(r.acquire(0), 0);
        assert_eq!(r.acquire(0), 0);
        assert_eq!(r.acquire(0), 0);
        assert_eq!(r.acquire(0), 1);
    }

    #[test]
    fn window_slides_for_far_future_requests() {
        let mut r = ResourceTable::new(1);
        assert_eq!(r.acquire(0), 0);
        assert_eq!(r.acquire(1_000_000), 1_000_000);
        assert_eq!(r.acquire(1_000_000), 1_000_001);
        // A stale request is clamped into the window (instruction-order
        // preference), not granted in the past.
        let granted = r.acquire(0);
        assert!(granted >= 1_000_000 - (WINDOW as u64));
    }

    #[test]
    fn interleaved_levels() {
        let mut r = ResourceTable::new(2);
        let a = r.acquire(10);
        let b = r.acquire(12);
        let c = r.acquire(10);
        let d = r.acquire(10);
        assert_eq!((a, b, c), (10, 12, 10));
        assert_eq!(d, 11);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = ResourceTable::new(0);
    }
}
