//! An independent, cycle-stepped reference simulator used to validate the
//! µDG model (the role gem5 plays in the paper's Table 1 / Fig. 5
//! validation).
//!
//! Unlike [`CoreModel`](crate::CoreModel) — which assigns event times
//! analytically in one forward pass over dependence edges — this simulator
//! steps a machine cycle by cycle with explicit structures: a fetch queue,
//! a reorder buffer, an issue window with oldest-first select, functional
//! units, and in-order commit. The two implementations share nothing but
//! the trace format, so agreement between them is meaningful evidence that
//! the dependence-graph abstraction captures the microarchitecture.

use std::collections::VecDeque;

use prism_sim::{RegDepTracker, Trace};

use crate::{BudgetExceeded, CoreConfig, ExecBudget, FastMap, FastSet, SeqTable, NODES_PER_INST};

/// Result of a reference simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceRun {
    /// Total cycles until the last commit.
    pub cycles: u64,
    /// Instructions committed.
    pub insts: u64,
}

impl ReferenceRun {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// In the front end; enters the window at the stored cycle.
    FrontEnd { enters_at: u64 },
    /// In the issue window, waiting for operands and a unit.
    Waiting,
    /// Executing; completes at the stored cycle.
    Executing { done_at: u64 },
    /// Completed, waiting for in-order commit.
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    stage: Stage,
    /// Dynamic producers (register and memory) this entry waits for.
    producers: Vec<u64>,
    fu: prism_isa::FuClass,
    latency: u64,
    mispredicted: bool,
}

/// Completion times are kept in a windowed [`SeqTable`]: an absent `seq`
/// means "not yet completed" for in-flight entries. The table is trimmed
/// back to the live dependence frontier (ROB producers, register
/// last-writers, and store-buffer producers) whenever it crosses this
/// floor, so its size tracks the machine's window — not the trace length.
/// The store-to-word map is pruned in the same pass: entries whose store
/// has already completed are vacuous dependences (any later load issues at
/// a cycle at or past the completion), so both structures stay bounded on
/// arbitrarily long traces.
const PRUNE_FLOOR: usize = 4096;

/// Simulates `trace` on `config` cycle by cycle.
///
/// Models: fetch bandwidth and front-end depth, ROB and issue-window
/// occupancy, issue width, per-class FU counts, dcache ports, oldest-first
/// select, in-order commit at the pipeline width, and mispredict redirects.
///
/// A built-in watchdog bounds the cycle loop; if it trips (a modeling bug
/// that deadlocks the machine), the partial run is returned. Use
/// [`try_simulate_reference`] to surface that as a typed error instead.
#[must_use]
pub fn simulate_reference(trace: &Trace, config: &CoreConfig) -> ReferenceRun {
    match try_simulate_reference(trace, config, &ExecBudget::unlimited()) {
        Ok(run) | Err(Watchdog::Partial(run)) => run,
        Err(Watchdog::Budget(e)) => unreachable!("unlimited budget tripped: {e}"),
    }
}

/// How a budgeted reference simulation was cut short.
#[derive(Debug, Clone)]
pub enum Watchdog {
    /// The explicit [`ExecBudget`] tripped.
    Budget(BudgetExceeded),
    /// The internal cycle watchdog tripped (machine deadlock); the partial
    /// run observed so far is attached.
    Partial(ReferenceRun),
}

impl std::fmt::Display for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Watchdog::Budget(e) => e.fmt(f),
            Watchdog::Partial(run) => write!(
                f,
                "reference simulator watchdog tripped after {} cycles ({} insts committed)",
                run.cycles, run.insts
            ),
        }
    }
}

impl std::error::Error for Watchdog {}

impl From<BudgetExceeded> for Watchdog {
    fn from(e: BudgetExceeded) -> Self {
        Watchdog::Budget(e)
    }
}

/// [`simulate_reference`] under an [`ExecBudget`]: charges
/// [`NODES_PER_INST`] fuel per committed instruction plus one per simulated
/// cycle (so a deadlocked machine still burns fuel), and converts the
/// internal cycle watchdog into a typed error.
///
/// # Errors
///
/// [`Watchdog::Budget`] when the budget trips; [`Watchdog::Partial`] when
/// the machine stops committing and the internal cycle cap is reached.
pub fn try_simulate_reference(
    trace: &Trace,
    config: &CoreConfig,
    budget: &ExecBudget,
) -> Result<ReferenceRun, Watchdog> {
    let mut meter = budget.meter();
    let width = config.width as usize;
    let rob_cap = if config.out_of_order {
        config.rob_size as usize
    } else {
        (width * 4).max(8)
    };
    let window_cap = if config.out_of_order {
        config.window_size as usize
    } else {
        width
    };

    let mut complete_at = SeqTable::with_capacity(PRUNE_FLOOR);
    let mut prune_watermark = PRUNE_FLOOR;
    let mut regs = RegDepTracker::new();
    // Last store seq per 8-byte word (for store→load links).
    let mut last_store: FastMap<u64, u64> = FastMap::default();
    // Reused keep-set buffer for the prune pass.
    let mut keep: FastSet<u64> = FastSet::default();

    let mut rob: VecDeque<RobEntry> = VecDeque::new();
    let mut next_fetch: usize = 0;
    let mut cycle: u64 = 0;
    let mut fetch_stall_until: u64 = 0;
    // A fetched-but-unresolved mispredicted branch blocks all younger
    // fetches (the correct path does not exist until the redirect).
    let mut fetch_blocked_on: Option<u64> = None;
    let mut committed: u64 = 0;
    let max_cycles = 2_000 + trace.len() as u64 * 256;

    while (committed as usize) < trace.len() && cycle < max_cycles {
        meter.charge(1)?;
        // ---- Complete ----------------------------------------------------
        for e in rob.iter_mut() {
            if let Stage::Executing { done_at } = e.stage {
                if done_at <= cycle {
                    e.stage = Stage::Done;
                    complete_at.insert(e.seq, done_at);
                    if e.mispredicted && fetch_blocked_on == Some(e.seq) {
                        fetch_blocked_on = None;
                        fetch_stall_until =
                            fetch_stall_until.max(done_at + u64::from(config.mispredict_penalty));
                    }
                }
            }
        }

        // ---- Commit (oldest first, up to width) --------------------------
        let mut committed_this_cycle = 0;
        while committed_this_cycle < width {
            match rob.front() {
                Some(e) if matches!(e.stage, Stage::Done) => {
                    meter.charge(NODES_PER_INST)?;
                    rob.pop_front();
                    committed += 1;
                    committed_this_cycle += 1;
                }
                _ => break,
            }
        }

        // ---- Prune completion times to the live frontier -----------------
        if complete_at.len() >= prune_watermark {
            // A word whose last store has already completed can never delay
            // a later load (it issues at a cycle at or past the store's
            // completion), so the store→word link is vacuous: drop it, and
            // with it the only thing keeping that seq's completion time
            // alive. This bounds `last_store` on long traces.
            last_store.retain(|_, s| !complete_at.contains(*s));
            keep.clear();
            for e in &rob {
                keep.extend(e.producers.iter().copied());
            }
            keep.extend(regs.writers());
            keep.extend(last_store.values().copied());
            complete_at.trim(keep.iter().copied());
            // Re-arm well above the irreducible live set so pruning stays
            // amortized O(1) per instruction.
            prune_watermark = (complete_at.len() * 2).max(PRUNE_FLOOR);
        }

        // ---- Issue (oldest-first select) ---------------------------------
        let mut alu = config.alus;
        let mut muldiv = config.muldivs;
        let mut fp = config.fpus;
        let mut ports = config.dcache_ports;
        let mut issue_slots = width;
        let mut in_window = 0usize;
        for e in rob.iter_mut() {
            if issue_slots == 0 {
                break;
            }
            if let Stage::FrontEnd { enters_at } = e.stage {
                if enters_at <= cycle {
                    e.stage = Stage::Waiting;
                } else {
                    // Younger entries are even further behind.
                    break;
                }
            }
            if !matches!(e.stage, Stage::Waiting) {
                continue;
            }
            in_window += 1;
            if in_window > window_cap {
                break; // window full: younger waiters are not yet visible
            }
            let ready = e
                .producers
                .iter()
                .all(|&p| complete_at.get(p).is_some_and(|t| t <= cycle));
            let unit = match e.fu {
                prism_isa::FuClass::Alu => &mut alu,
                prism_isa::FuClass::MulDiv => &mut muldiv,
                prism_isa::FuClass::Fp => &mut fp,
                prism_isa::FuClass::Mem => &mut ports,
                prism_isa::FuClass::None => {
                    e.stage = Stage::Executing { done_at: cycle + 1 };
                    issue_slots -= 1;
                    continue;
                }
            };
            if ready && *unit > 0 {
                *unit -= 1;
                issue_slots -= 1;
                e.stage = Stage::Executing {
                    done_at: cycle + e.latency.max(1),
                };
            } else if !config.out_of_order {
                break; // in-order issue: a stalled elder blocks the rest
            }
        }

        // ---- Fetch/rename (width per cycle, ROB space permitting) -------
        if cycle >= fetch_stall_until && fetch_blocked_on.is_none() {
            for _ in 0..width {
                if next_fetch >= trace.len() || rob.len() >= rob_cap {
                    break;
                }
                if fetch_blocked_on.is_some() {
                    break;
                }
                let d = &trace.insts[next_fetch];
                let inst = trace.static_inst(d);
                let mut producers = regs.sources(inst);
                let mut latency = u64::from(inst.op.latency());
                if let Some(m) = &d.mem {
                    if m.is_store {
                        latency = 1;
                        let first = m.addr >> 3;
                        let last = (m.addr + u64::from(m.width.max(1)) - 1) >> 3;
                        for w in first..=last {
                            last_store.insert(w, d.seq);
                        }
                    } else {
                        latency = u64::from(m.latency);
                        let first = m.addr >> 3;
                        let last = (m.addr + u64::from(m.width.max(1)) - 1) >> 3;
                        for w in first..=last {
                            if let Some(&s) = last_store.get(&w) {
                                if !producers.contains(&s) {
                                    producers.push(s);
                                }
                            }
                        }
                    }
                }
                rob.push_back(RobEntry {
                    seq: d.seq,
                    stage: Stage::FrontEnd {
                        enters_at: cycle + u64::from(config.frontend_depth),
                    },
                    producers,
                    fu: inst.fu_class(),
                    latency,
                    mispredicted: d.branch.is_some_and(|b| b.mispredicted),
                });
                regs.retire(inst, d.seq);
                if d.branch.is_some_and(|b| b.mispredicted) {
                    fetch_blocked_on = Some(d.seq);
                }
                next_fetch += 1;
                if d.branch.is_some_and(|b| b.taken) {
                    break; // fetch group ends at a taken branch
                }
            }
        }

        cycle += 1;
    }

    let run = ReferenceRun {
        cycles: cycle,
        insts: committed,
    };
    if (committed as usize) < trace.len() {
        return Err(Watchdog::Partial(run));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_trace;
    use prism_isa::{Program, ProgramBuilder, Reg};

    fn dp_kernel(n: i64) -> Program {
        let (pa, pb, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (fa, ft) = (Reg::fp(0), Reg::fp(1));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x24000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fmul(ft, fa, fa);
        b.fadd(ft, ft, fa);
        b.fst(ft, pb, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn commits_every_instruction() {
        let t = prism_sim::trace(&dp_kernel(100)).unwrap();
        for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
            let r = simulate_reference(&t, &cfg);
            assert_eq!(r.insts, t.len() as u64, "{}", cfg.name);
            assert!(r.ipc() > 0.0 && r.ipc() <= f64::from(cfg.width));
        }
    }

    #[test]
    fn reference_and_udg_agree_on_ordering() {
        // The two independent models must agree that wider OOO cores are
        // faster on parallel code.
        let t = prism_sim::trace(&dp_kernel(300)).unwrap();
        let ref2 = simulate_reference(&t, &CoreConfig::ooo2()).cycles;
        let ref6 = simulate_reference(&t, &CoreConfig::ooo6()).cycles;
        assert!(ref6 < ref2);
        let udg2 = simulate_trace(&t, &CoreConfig::ooo2()).cycles;
        let udg6 = simulate_trace(&t, &CoreConfig::ooo6()).cycles;
        assert!(udg6 < udg2);
    }

    #[test]
    fn reference_and_udg_agree_within_tolerance() {
        let t = prism_sim::trace(&dp_kernel(400)).unwrap();
        for cfg in [
            CoreConfig::ooo(1),
            CoreConfig::ooo2(),
            CoreConfig::ooo4(),
            CoreConfig::ooo(8),
        ] {
            let r = simulate_reference(&t, &cfg);
            let u = simulate_trace(&t, &cfg);
            let err = (r.ipc() - u.ipc()).abs() / r.ipc();
            assert!(
                err < 0.35,
                "{}: reference ipc {:.3} vs µDG ipc {:.3} (err {:.0}%)",
                cfg.name,
                r.ipc(),
                u.ipc(),
                err * 100.0
            );
        }
    }
}
