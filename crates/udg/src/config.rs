//! General-purpose core configurations (the paper's Table 4).

use prism_energy::CoreEnergyConfig;

/// Microarchitectural parameters of a general-purpose core.
///
/// The four named constructors are the paper's Table 4 design points; the
/// [`CoreConfig::ooo`] constructor builds arbitrary widths for the
/// OOO1↔OOO8 cross-validation of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Display name (e.g. `"OOO2"`).
    pub name: String,
    /// Fetch = dispatch = issue = writeback width.
    pub width: u32,
    /// Reorder-buffer entries (0 for in-order).
    pub rob_size: u32,
    /// Issue-window entries (0 for in-order).
    pub window_size: u32,
    /// Data-cache ports.
    pub dcache_ports: u32,
    /// Simple integer ALUs.
    pub alus: u32,
    /// Integer multiply/divide units.
    pub muldivs: u32,
    /// FP units.
    pub fpus: u32,
    /// Whether the core executes out of order.
    pub out_of_order: bool,
    /// Front-end depth: cycles from fetch to dispatch.
    pub frontend_depth: u32,
    /// Cycles from branch resolution to redirected fetch (mispredict
    /// penalty on top of refilling the front end).
    pub mispredict_penalty: u32,
    /// Whether a 256-bit SIMD datapath is attached.
    pub has_simd: bool,
}

impl CoreConfig {
    /// Table 4: dual-issue in-order core (IO2).
    #[must_use]
    pub fn io2() -> Self {
        CoreConfig {
            name: "IO2".into(),
            width: 2,
            rob_size: 0,
            window_size: 0,
            dcache_ports: 1,
            alus: 2,
            muldivs: 1,
            fpus: 1,
            out_of_order: false,
            frontend_depth: 4,
            mispredict_penalty: 6,
            has_simd: false,
        }
    }

    /// Table 4: dual-issue out-of-order core (OOO2).
    #[must_use]
    pub fn ooo2() -> Self {
        CoreConfig {
            name: "OOO2".into(),
            width: 2,
            rob_size: 64,
            window_size: 32,
            dcache_ports: 1,
            alus: 2,
            muldivs: 1,
            fpus: 1,
            out_of_order: true,
            frontend_depth: 5,
            mispredict_penalty: 8,
            has_simd: false,
        }
    }

    /// Table 4: quad-issue out-of-order core (OOO4).
    #[must_use]
    pub fn ooo4() -> Self {
        CoreConfig {
            name: "OOO4".into(),
            width: 4,
            rob_size: 168,
            window_size: 48,
            dcache_ports: 2,
            alus: 3,
            muldivs: 2,
            fpus: 2,
            out_of_order: true,
            frontend_depth: 6,
            mispredict_penalty: 10,
            has_simd: false,
        }
    }

    /// Table 4: six-issue out-of-order core (OOO6).
    #[must_use]
    pub fn ooo6() -> Self {
        CoreConfig {
            name: "OOO6".into(),
            width: 6,
            rob_size: 192,
            window_size: 52,
            dcache_ports: 3,
            alus: 4,
            muldivs: 2,
            fpus: 3,
            out_of_order: true,
            frontend_depth: 6,
            mispredict_penalty: 12,
            has_simd: false,
        }
    }

    /// An arbitrary-width OOO core, interpolating/extrapolating Table 4's
    /// structure sizes — used for the OOO1↔OOO8 validation experiment.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn ooo(width: u32) -> Self {
        assert!(width > 0, "width must be positive");
        CoreConfig {
            name: format!("OOO{width}"),
            width,
            rob_size: 32 + 28 * width,
            window_size: 24 + 5 * width,
            dcache_ports: (width / 2).clamp(1, 4),
            alus: (width * 2 / 3).max(1) + 1,
            muldivs: (width / 3).max(1),
            fpus: (width / 2).max(1),
            out_of_order: true,
            frontend_depth: 5 + width / 4,
            mispredict_penalty: 8 + width,
            has_simd: false,
        }
    }

    /// Returns a copy with the 256-bit SIMD datapath enabled.
    #[must_use]
    pub fn with_simd(mut self) -> Self {
        self.has_simd = true;
        self
    }

    /// Canonical encoding of every parameter that shapes a timing walk.
    ///
    /// Two cores with equal timing classes produce bit-identical
    /// `run_exocore_timing` output for the same trace/IR/plans/schedule;
    /// only priced quantities (energy constants, area) may differ. The
    /// display [`name`](CoreConfig::name) is deliberately excluded, so a
    /// renamed or relabeled variant of the same microarchitecture shares
    /// one walk.
    #[must_use]
    pub fn timing_class(&self) -> String {
        format!(
            "w{};rob{};win{};dcp{};alu{};md{};fp{};ooo{};fe{};mp{};simd{}",
            self.width,
            self.rob_size,
            self.window_size,
            self.dcache_ports,
            self.alus,
            self.muldivs,
            self.fpus,
            u8::from(self.out_of_order),
            self.frontend_depth,
            self.mispredict_penalty,
            u8::from(self.has_simd),
        )
    }

    /// The subset of parameters the energy model consumes.
    #[must_use]
    pub fn energy_config(&self) -> CoreEnergyConfig {
        CoreEnergyConfig {
            width: self.width,
            rob_size: self.rob_size,
            window_size: self.window_size,
            out_of_order: self.out_of_order,
            dcache_ports: self.dcache_ports,
        }
    }

    /// Core area in mm² (excluding L2 and accelerators).
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let core = prism_energy::core_area_mm2(&self.energy_config());
        if self.has_simd {
            core + prism_energy::AccelAreas::new().simd
        } else {
            core
        }
    }

    /// Number of functional units of a class.
    #[must_use]
    pub fn fu_count(&self, class: prism_isa::FuClass) -> u32 {
        use prism_isa::FuClass;
        match class {
            FuClass::Alu => self.alus,
            FuClass::MulDiv => self.muldivs,
            FuClass::Fp => self.fpus,
            FuClass::Mem => self.dcache_ports,
            FuClass::None => u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let io2 = CoreConfig::io2();
        assert_eq!(
            (io2.width, io2.rob_size, io2.window_size, io2.dcache_ports),
            (2, 0, 0, 1)
        );
        assert!(!io2.out_of_order);
        let ooo2 = CoreConfig::ooo2();
        assert_eq!((ooo2.width, ooo2.rob_size, ooo2.window_size), (2, 64, 32));
        let ooo4 = CoreConfig::ooo4();
        assert_eq!(
            (
                ooo4.width,
                ooo4.rob_size,
                ooo4.window_size,
                ooo4.dcache_ports
            ),
            (4, 168, 48, 2)
        );
        assert_eq!((ooo4.alus, ooo4.muldivs, ooo4.fpus), (3, 2, 2));
        let ooo6 = CoreConfig::ooo6();
        assert_eq!(
            (
                ooo6.width,
                ooo6.rob_size,
                ooo6.window_size,
                ooo6.dcache_ports
            ),
            (6, 192, 52, 3)
        );
        assert_eq!((ooo6.alus, ooo6.muldivs, ooo6.fpus), (4, 2, 3));
    }

    #[test]
    fn parametric_ooo_brackets_table4() {
        let o1 = CoreConfig::ooo(1);
        let o8 = CoreConfig::ooo(8);
        assert!(o1.rob_size < CoreConfig::ooo2().rob_size);
        assert!(o8.rob_size > CoreConfig::ooo6().rob_size);
        assert_eq!(o1.name, "OOO1");
        assert_eq!(o8.name, "OOO8");
    }

    #[test]
    fn areas_increase_with_width() {
        assert!(CoreConfig::io2().area_mm2() < CoreConfig::ooo2().area_mm2());
        assert!(CoreConfig::ooo2().area_mm2() < CoreConfig::ooo4().area_mm2());
        assert!(CoreConfig::ooo4().area_mm2() < CoreConfig::ooo6().area_mm2());
        let plain = CoreConfig::ooo2();
        assert!(plain.clone().with_simd().area_mm2() > plain.area_mm2());
    }

    #[test]
    fn timing_class_ignores_name_only() {
        let a = CoreConfig::ooo2();
        let mut renamed = a.clone();
        renamed.name = "OOO2-cheap".into();
        assert_eq!(a.timing_class(), renamed.timing_class());
        assert_ne!(a.timing_class(), CoreConfig::ooo4().timing_class());
        assert_ne!(a.timing_class(), a.clone().with_simd().timing_class());
        assert_ne!(CoreConfig::io2().timing_class(), a.timing_class());
    }

    #[test]
    fn fu_counts() {
        use prism_isa::FuClass;
        let c = CoreConfig::ooo4();
        assert_eq!(c.fu_count(FuClass::Alu), 3);
        assert_eq!(c.fu_count(FuClass::Mem), 2);
        assert_eq!(c.fu_count(FuClass::None), u32::MAX);
    }
}
