//! Allocation-lean containers for the per-instruction hot path.
//!
//! The µDG evaluators key almost every lookup by a dynamic-instruction
//! `seq` — a dense, monotonically increasing integer. Hashing those through
//! a general-purpose SipHash map costs more than the model math itself, so
//! this module provides:
//!
//! * [`SeqTable`] — a windowed `seq → u64` table backed by a seq-indexed
//!   `Vec` for the live window plus a small spill map for long-lived old
//!   entries, with a watermark-based [`SeqTable::trim`] that re-bases the
//!   window (the replacement for dense-keyed `HashMap<u64, u64>`
//!   timetables),
//! * [`FastMap`] / [`FastSet`] — `HashMap`/`HashSet` with a cheap
//!   multiplicative [`FastHasher`] for the remaining integer-keyed
//!   hot-path maps (memory-word footprints), where keys are attacker-free
//!   internal values and SipHash's DoS resistance buys nothing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Sentinel marking an unoccupied window slot. Completion times are cycle
/// counts and can never legitimately reach `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// A fast, non-cryptographic hasher for internal integer keys
/// (an FxHash-style multiplicative mix).
///
/// Not DoS-resistant — only for maps whose keys the program itself
/// generates (seqs, memory words), never for external input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

/// Multiplicative mixing constant (golden-ratio based, as in FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// [`BuildHasherDefault`] for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed through [`FastHasher`].
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

/// Windowed `seq → u64` table: a dense, seq-indexed ring of the recent
/// window plus a spill map for entries that survive a trim.
///
/// Dynamic-instruction seqs arrive (nearly) densely and monotonically, so
/// within the live window a lookup is one bounds check and one `Vec` index
/// — no hashing. [`SeqTable::trim`] re-bases the window: entries named by
/// the caller's keep-set move to the spill map (bounded by the live
/// dependence frontier, e.g. one seq per architectural register), and
/// everything else is dropped. Entries inserted below the current base
/// (stragglers after a re-base) land in the spill map and stay exactly
/// as queryable as before.
///
/// # Examples
///
/// ```
/// use prism_udg::SeqTable;
///
/// let mut t = SeqTable::new();
/// t.insert(0, 10);
/// t.insert(1, 12);
/// t.insert(7, 99);
/// assert_eq!(t.get(1), Some(12));
/// assert_eq!(t.get(3), None);
/// t.trim([7u64]); // keep only seq 7's time
/// assert_eq!(t.get(1), None);
/// assert_eq!(t.get(7), Some(99));
/// t.insert(8, 120); // the window continues past the trim point
/// assert_eq!(t.get(8), Some(120));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeqTable {
    /// Seq of `slots[0]`.
    base: u64,
    /// Dense window; `EMPTY` marks unoccupied slots.
    slots: Vec<u64>,
    /// Occupied slots in `slots` (not counting the spill map).
    live: usize,
    /// Entries below `base` that survived a trim (or were inserted late).
    spill: FastMap<u64, u64>,
}

impl SeqTable {
    /// Creates an empty table based at seq 0.
    #[must_use]
    pub fn new() -> Self {
        SeqTable::default()
    }

    /// Creates an empty table with window capacity for `cap` seqs.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        SeqTable {
            slots: Vec::with_capacity(cap),
            ..SeqTable::default()
        }
    }

    /// Number of entries currently held (window + spill).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live + self.spill.len()
    }

    /// `true` when no entry is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored for `seq`, if any.
    #[inline]
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<u64> {
        if seq >= self.base {
            let idx = (seq - self.base) as usize;
            match self.slots.get(idx) {
                Some(&t) if t != EMPTY => Some(t),
                _ => None,
            }
        } else {
            self.spill.get(&seq).copied()
        }
    }

    /// Whether `seq` has a stored value.
    #[inline]
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        self.get(seq).is_some()
    }

    /// Inserts (or overwrites) the value for `seq`.
    #[inline]
    pub fn insert(&mut self, seq: u64, value: u64) {
        debug_assert_ne!(value, EMPTY, "u64::MAX is the empty-slot sentinel");
        if seq >= self.base {
            let idx = (seq - self.base) as usize;
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, EMPTY);
            }
            if self.slots[idx] == EMPTY {
                self.live += 1;
            }
            self.slots[idx] = value;
        } else {
            self.spill.insert(seq, value);
        }
    }

    /// Drops every entry not named by `keep`, then re-bases the window one
    /// past its current end: survivors move to the spill map (bounded by
    /// the keep-set size), the dense window restarts empty, and its
    /// allocation is reused.
    pub fn trim(&mut self, keep: impl IntoIterator<Item = u64>) {
        let survivors: Vec<(u64, u64)> = keep
            .into_iter()
            .filter_map(|s| self.get(s).map(|t| (s, t)))
            .collect();
        self.base += self.slots.len() as u64;
        self.slots.clear();
        self.live = 0;
        self.spill.clear();
        for (s, t) in survivors {
            self.spill.insert(s, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = SeqTable::new();
        assert!(t.is_empty());
        for s in 0..100u64 {
            t.insert(s, s * 3);
        }
        assert_eq!(t.len(), 100);
        for s in 0..100u64 {
            assert_eq!(t.get(s), Some(s * 3));
        }
        assert_eq!(t.get(100), None);
    }

    #[test]
    fn sparse_inserts_leave_gaps_unoccupied() {
        let mut t = SeqTable::new();
        t.insert(5, 50);
        t.insert(9, 90);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(7), None);
        assert!(t.contains(9));
    }

    #[test]
    fn overwrite_does_not_double_count() {
        let mut t = SeqTable::new();
        t.insert(3, 1);
        t.insert(3, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(3), Some(2));
    }

    #[test]
    fn trim_keeps_only_named_seqs() {
        let mut t = SeqTable::new();
        for s in 0..1000u64 {
            t.insert(s, s + 7);
        }
        t.trim([10u64, 500, 999, 12345]); // 12345 was never inserted
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(500), Some(507));
        assert_eq!(t.get(501), None);
    }

    #[test]
    fn window_continues_after_trim_and_stragglers_spill() {
        let mut t = SeqTable::new();
        for s in 0..100u64 {
            t.insert(s, s + 1);
        }
        t.trim([99u64]);
        // New entries past the trim point go in the fresh window.
        t.insert(100, 1000);
        assert_eq!(t.get(100), Some(1000));
        assert_eq!(t.get(99), Some(100));
        // A straggler below the new base is still stored and queryable.
        t.insert(50, 555);
        assert_eq!(t.get(50), Some(555));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn repeated_trims_rebase_monotonically() {
        let mut t = SeqTable::new();
        let mut next = 0u64;
        for _ in 0..10 {
            for _ in 0..500 {
                t.insert(next, next + 2);
                next += 1;
            }
            let keep = next - 1;
            t.trim([keep]);
            assert_eq!(t.len(), 1);
            assert_eq!(t.get(keep), Some(keep + 2));
        }
    }

    #[test]
    fn fast_map_holds_word_keys() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for w in 0..10_000u64 {
            m.insert(w * 8, w);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&80).copied(), Some(10));
    }
}
