//! Streaming µDG core-timing models for in-order and out-of-order cores.
//!
//! The model consumes [`ModelInst`]s in program order and assigns each one
//! its five µDG node times (fetch, dispatch, execute, complete, commit) by
//! taking the max over the incoming dependence edges of the paper's
//! Figure 4(b):
//!
//! * fetch bandwidth `F[i-w] → F[i]`, front-end depth `F → D`,
//! * dispatch width `D[i-w] → D[i]`, ROB occupancy `C[i-R] → D[i]`,
//!   window occupancy `E[i-W] → D[i]`,
//! * data/memory dependences `P[prod] → E[i]`, FU & cache-port structural
//!   hazards (via [`ResourceTable`]),
//! * execution latency `E → P`, commit order and width `C[i-w] → C[i]`,
//! * branch mispredicts `P[br] → F[next]` with the pipeline-refill penalty.
//!
//! Because every time is finalized when the instruction is issued, the
//! model is a single forward pass — the property that makes TDG modeling
//! fast. Which constraint *bound* each node is tallied per [`EdgeKind`],
//! giving the critical-path attribution the paper's Appendix A uses for
//! validation.

use prism_isa::FuClass;
use prism_sim::MemLevel;

use crate::{CoreConfig, EdgeKind, FastMap, ResourceTable};

/// A dependence of a [`ModelInst`] on an earlier value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelDep {
    /// Absolute cycle at which the value is available (producer `P` time).
    pub ready: u64,
    /// Attribution for critical-path accounting.
    pub kind: EdgeKind,
}

impl ModelDep {
    /// A register data dependence ready at `ready`.
    #[must_use]
    pub fn data(ready: u64) -> Self {
        ModelDep {
            ready,
            kind: EdgeKind::DataDep,
        }
    }

    /// A memory (store→load) dependence ready at `ready`.
    #[must_use]
    pub fn memory(ready: u64) -> Self {
        ModelDep {
            ready,
            kind: EdgeKind::MemDep,
        }
    }
}

/// The model-level instruction: everything the timing model needs to place
/// one µDG instruction, independent of where it came from (a raw trace or a
/// TDG transform's output).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInst {
    /// Functional-unit class (determines the contended resource).
    pub fu: FuClass,
    /// Execute latency in cycles (observed memory latency for loads).
    pub latency: u64,
    /// Value dependences (producer completion times).
    pub deps: Vec<ModelDep>,
    /// Memory level that served this access, if it is a memory op
    /// (for energy accounting).
    pub mem_level: Option<MemLevel>,
    /// `true` if this is a store (dcache access without a register write).
    pub is_store: bool,
    /// `true` for conditional branches (predictor lookup energy).
    pub is_cond_branch: bool,
    /// `true` if this control instruction was mispredicted: the next
    /// instruction's fetch is delayed to this one's completion + penalty.
    pub mispredicted: bool,
    /// `true` for any taken control transfer: the fetch group ends here
    /// (the front end cannot fetch across a taken branch in one cycle).
    pub branch_taken: bool,
    /// `true` for vector (SIMD) operations: they contend for the dedicated
    /// vector pipes rather than the scalar FU pool.
    pub vector: bool,
    /// Register-file reads performed.
    pub reads: u8,
    /// Register-file writes performed.
    pub writes: u8,
}

impl Default for ModelInst {
    fn default() -> Self {
        ModelInst {
            fu: FuClass::Alu,
            latency: 1,
            deps: Vec::new(),
            mem_level: None,
            is_store: false,
            is_cond_branch: false,
            mispredicted: false,
            branch_taken: false,
            vector: false,
            reads: 0,
            writes: 1,
        }
    }
}

/// The five µDG node times assigned to an instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstTimes {
    /// Fetch.
    pub fetch: u64,
    /// Dispatch (== fetch + front-end depth for in-order cores).
    pub dispatch: u64,
    /// Execute (issue to FU).
    pub execute: u64,
    /// Complete (result available).
    pub complete: u64,
    /// Commit.
    pub commit: u64,
}

/// Fixed-capacity ring of recent times, indexed by distance into the past.
#[derive(Debug, Clone)]
struct TimeRing {
    buf: Vec<u64>,
    len: u64,
}

impl TimeRing {
    fn new(capacity: usize) -> Self {
        TimeRing {
            buf: vec![0; capacity.max(1)],
            len: 0,
        }
    }

    fn push(&mut self, t: u64) {
        let cap = self.buf.len() as u64;
        self.buf[(self.len % cap) as usize] = t;
        self.len += 1;
    }

    /// Time of the element `back` positions before the next push (1 = most
    /// recent). Returns `None` when not enough history exists.
    fn get_back(&self, back: u64) -> Option<u64> {
        if back == 0 || back > self.len || back > self.buf.len() as u64 {
            return None;
        }
        let cap = self.buf.len() as u64;
        Some(self.buf[((self.len - back) % cap) as usize])
    }
}

/// Binding-constraint tally: how many node times each edge kind determined.
///
/// A fixed-size per-[`EdgeKind`] array rather than a map — incrementing a
/// tally is one indexed add on the hot path, and equality/iteration treat
/// a zero count as "absent" (matching the former map semantics, where a
/// kind only appeared once it had bound at least one node).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BindingCounts {
    counts: [u64; EdgeKind::COUNT],
}

impl BindingCounts {
    /// Creates an all-zero tally.
    #[must_use]
    pub fn new() -> Self {
        BindingCounts::default()
    }

    /// Adds one binding of `kind`.
    #[inline]
    pub fn add(&mut self, kind: EdgeKind) {
        self.counts[kind as usize] += 1;
    }

    /// The tally for `kind`, if it ever bound a node (map-style API).
    #[must_use]
    pub fn get(&self, kind: &EdgeKind) -> Option<&u64> {
        let c = &self.counts[*kind as usize];
        (*c != 0).then_some(c)
    }

    /// The nonzero tallies, in [`EdgeKind`] discriminant order.
    pub fn values(&self) -> impl Iterator<Item = &u64> {
        self.counts.iter().filter(|&&c| c != 0)
    }

    /// `(kind, count)` pairs for every kind that bound at least one node.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeKind, u64)> + '_ {
        EdgeKind::ALL
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c != 0)
            .map(|(&k, &c)| (k, c))
    }
}

/// Tracks the issue-window occupancy constraint precisely: dispatching
/// instruction `i` requires fewer than `W` older instructions to still be
/// waiting to issue, i.e. `D[i] ≥` the `W`-th largest issue time among all
/// older instructions. A capped min-heap of the largest `W` issue times
/// yields that bound in O(log W) per instruction.
#[derive(Debug, Clone)]
struct WindowOccupancy {
    capacity: usize,
    /// Min-heap (via `Reverse`) of the largest `capacity` issue times.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
}

impl WindowOccupancy {
    fn new(capacity: usize) -> Self {
        WindowOccupancy {
            capacity,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Earliest dispatch time permitted by window occupancy.
    fn bound(&self) -> Option<u64> {
        if self.capacity > 0 && self.heap.len() == self.capacity {
            self.heap.peek().map(|r| r.0)
        } else {
            None
        }
    }

    fn record_issue(&mut self, e: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(std::cmp::Reverse(e));
        } else if self.heap.peek().is_some_and(|min| e > min.0) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(e));
        }
    }
}

/// The streaming core-timing model.
///
/// # Examples
///
/// ```
/// use prism_udg::{CoreConfig, CoreModel, ModelInst};
///
/// let mut core = CoreModel::new(&CoreConfig::ooo2());
/// let t0 = core.issue(&ModelInst::default());
/// let t1 = core.issue(&ModelInst {
///     deps: vec![prism_udg::ModelDep::data(t0.complete)],
///     ..ModelInst::default()
/// });
/// assert!(t1.complete > t0.complete);
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreConfig,
    fetch: TimeRing,
    dispatch: TimeRing,
    execute: TimeRing,
    commit: TimeRing,
    window: WindowOccupancy,
    alu: ResourceTable,
    muldiv: ResourceTable,
    fp: ResourceTable,
    mem: ResourceTable,
    /// Dedicated vector pipes (256-bit SIMD executes here, 2-wide).
    vector: ResourceTable,
    /// Earliest fetch for the next instruction (mispredict redirect).
    fetch_barrier: u64,
    issued: u64,
    events: prism_energy::CoreEvents,
    binding: BindingCounts,
}

impl CoreModel {
    /// Creates a model starting at cycle 0.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        CoreModel::starting_at(cfg, 0)
    }

    /// Creates a model whose first fetch may not begin before `start`
    /// (used when a region begins after an accelerator hand-off).
    #[must_use]
    pub fn starting_at(cfg: &CoreConfig, start: u64) -> Self {
        let ring = |n: u32| TimeRing::new(n.max(1) as usize);
        CoreModel {
            fetch: ring(cfg.width),
            dispatch: ring(cfg.width),
            execute: ring(cfg.window_size.max(cfg.width)),
            window: WindowOccupancy::new(if cfg.out_of_order {
                cfg.window_size as usize
            } else {
                0
            }),
            commit: ring(cfg.rob_size.max(cfg.width)),
            alu: ResourceTable::new(cfg.alus),
            muldiv: ResourceTable::new(cfg.muldivs),
            fp: ResourceTable::new(cfg.fpus),
            mem: ResourceTable::new(cfg.dcache_ports),
            vector: ResourceTable::new(2),
            fetch_barrier: start,
            issued: 0,
            events: prism_energy::CoreEvents::default(),
            binding: BindingCounts::new(),
            cfg: cfg.clone(),
        }
    }

    /// The configuration this model was built from.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Instructions issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Accumulated core energy events.
    #[must_use]
    pub fn events(&self) -> &prism_energy::CoreEvents {
        &self.events
    }

    /// How many node times each edge kind determined (critical-path
    /// attribution).
    #[must_use]
    pub fn binding_counts(&self) -> &BindingCounts {
        &self.binding
    }

    /// Consumes the model, yielding its binding counts without a copy.
    #[must_use]
    pub fn into_binding_counts(self) -> BindingCounts {
        self.binding
    }

    /// Completion cycle of the latest commit (the region's length so far).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.commit.get_back(1).unwrap_or(self.fetch_barrier)
    }

    /// Prevents any later fetch from starting before `t` (used when the
    /// pipeline resumes after an accelerator region or a region switch).
    pub fn stall_fetch_until(&mut self, t: u64) {
        if t > self.fetch_barrier {
            self.fetch_barrier = t;
        }
    }

    fn bind(&mut self, kind: EdgeKind) {
        self.binding.add(kind);
    }

    fn resource_for(&mut self, fu: FuClass) -> Option<&mut ResourceTable> {
        match fu {
            FuClass::Alu => Some(&mut self.alu),
            FuClass::MulDiv => Some(&mut self.muldiv),
            FuClass::Fp => Some(&mut self.fp),
            FuClass::Mem => Some(&mut self.mem),
            FuClass::None => None,
        }
    }

    /// Places one instruction into the µDG and returns its node times.
    pub fn issue(&mut self, mi: &ModelInst) -> InstTimes {
        let ooo = self.cfg.out_of_order;
        let width = u64::from(self.cfg.width);

        // ---- Fetch: bandwidth + mispredict redirect ----------------------
        let (mut f, mut f_kind) = (self.fetch_barrier, EdgeKind::Mispredict);
        if let Some(prev) = self.fetch.get_back(width) {
            if prev + 1 > f {
                f = prev + 1;
                f_kind = EdgeKind::FetchBw;
            }
        }
        self.bind(f_kind);

        // ---- Dispatch: front end + width + ROB/window occupancy ----------
        let (mut d, mut d_kind) = (f + u64::from(self.cfg.frontend_depth), EdgeKind::FrontEnd);
        if let Some(prev) = self.dispatch.get_back(width) {
            if prev + 1 > d {
                d = prev + 1;
                d_kind = EdgeKind::DispatchBw;
            }
        }
        if ooo {
            if self.cfg.rob_size > 0 {
                if let Some(c_old) = self.commit.get_back(u64::from(self.cfg.rob_size)) {
                    if c_old > d {
                        d = c_old;
                        d_kind = EdgeKind::RobFull;
                    }
                }
            }
            if let Some(bound) = self.window.bound() {
                if bound > d {
                    d = bound;
                    d_kind = EdgeKind::WindowFull;
                }
            }
        }
        self.bind(d_kind);

        // ---- Execute: dispatch, dependences, in-order, resources ---------
        let (mut e, mut e_kind) = (d, EdgeKind::DispatchExec);
        for dep in &mi.deps {
            if dep.ready > e {
                e = dep.ready;
                e_kind = dep.kind;
            }
        }
        if !ooo {
            // In-order issue: an instruction cannot issue before its elder
            // (same cycle dual-issue allowed), and width per cycle.
            if let Some(prev) = self.execute.get_back(1) {
                if prev > e {
                    e = prev;
                    e_kind = EdgeKind::InOrderIssue;
                }
            }
            if let Some(prev_w) = self.execute.get_back(width) {
                if prev_w + 1 > e {
                    e = prev_w + 1;
                    e_kind = EdgeKind::InOrderIssue;
                }
            }
        }
        let res = if mi.vector && mi.fu != FuClass::Mem {
            Some(&mut self.vector)
        } else {
            self.resource_for(mi.fu)
        };
        if let Some(res) = res {
            let granted = res.acquire(e);
            if granted > e {
                e = granted;
                e_kind = EdgeKind::Resource;
            }
        }
        self.bind(e_kind);
        if self.cfg.out_of_order {
            self.window.record_issue(e);
        }

        // ---- Complete / Commit -------------------------------------------
        let p = e + mi.latency;
        let (mut c, mut c_kind) = (p + 1, EdgeKind::Complete);
        if let Some(prev) = self.commit.get_back(1) {
            if prev > c {
                c = prev;
                c_kind = EdgeKind::CommitBw;
            }
        }
        if let Some(prev_w) = self.commit.get_back(width) {
            if prev_w + 1 > c {
                c = prev_w + 1;
                c_kind = EdgeKind::CommitBw;
            }
        }
        self.bind(c_kind);

        // ---- Fetch-group break and mispredict redirect --------------------
        if mi.branch_taken {
            // The next instruction cannot fetch in the same cycle.
            self.fetch_barrier = self.fetch_barrier.max(f + 1);
        }
        if mi.mispredicted {
            let redirect = p + u64::from(self.cfg.mispredict_penalty);
            if redirect > self.fetch_barrier {
                self.fetch_barrier = redirect;
            }
        }

        // ---- Rings, events ------------------------------------------------
        self.fetch.push(f);
        self.dispatch.push(d);
        self.execute.push(e);
        self.commit.push(c);
        self.issued += 1;

        let ev = &mut self.events;
        ev.fetches += 1;
        ev.decodes += 1;
        ev.commits += 1;
        if ooo {
            ev.renames += 1;
            ev.window_ops += 1;
            ev.rob_ops += 1;
        }
        ev.regfile_reads += u64::from(mi.reads);
        ev.regfile_writes += u64::from(mi.writes);
        match mi.fu {
            FuClass::Alu => ev.alu_ops += 1,
            FuClass::MulDiv => ev.muldiv_ops += 1,
            FuClass::Fp => ev.fp_ops += 1,
            FuClass::Mem => {}
            FuClass::None => {}
        }
        if let Some(level) = mi.mem_level {
            ev.dcache_accesses += 1;
            match level {
                MemLevel::L1 => {}
                MemLevel::L2 => ev.l2_accesses += 1,
                MemLevel::Dram => {
                    ev.l2_accesses += 1;
                    ev.dram_accesses += 1;
                }
            }
        }
        if mi.is_cond_branch {
            ev.bp_lookups += 1;
        }
        if mi.mispredicted {
            ev.mispredict_flushes += 1;
        }

        InstTimes {
            fetch: f,
            dispatch: d,
            execute: e,
            complete: p,
            commit: c,
        }
    }
}

/// Tracks store→load memory dependences at 8-byte-word granularity.
///
/// Loads are made dependent on the completion time of the last store that
/// wrote any word they read, reproducing the µDG's dynamic memory-dependence
/// edges.
#[derive(Debug, Clone, Default)]
pub struct MemDepTracker {
    last_store_complete: FastMap<u64, u64>,
}

impl MemDepTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        MemDepTracker::default()
    }

    fn words(addr: u64, width: u8) -> impl Iterator<Item = u64> {
        let first = addr >> 3;
        let last = (addr + u64::from(width.max(1)) - 1) >> 3;
        first..=last
    }

    /// Ready time a load of `addr`/`width` must wait for, if any.
    #[must_use]
    pub fn load_dependence(&self, addr: u64, width: u8) -> Option<u64> {
        Self::words(addr, width)
            .filter_map(|w| self.last_store_complete.get(&w).copied())
            .max()
    }

    /// Records a store completing at `complete`.
    pub fn record_store(&mut self, addr: u64, width: u8, complete: u64) {
        for w in Self::words(addr, width) {
            self.last_store_complete.insert(w, complete);
        }
    }

    /// Words currently tracked (the store footprint).
    #[must_use]
    pub fn len(&self) -> usize {
        self.last_store_complete.len()
    }

    /// `true` when no store is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.last_store_complete.is_empty()
    }

    /// Drops entries whose store completed at or before `cutoff`.
    ///
    /// Timing-exact when every *future* load's execute time is at least
    /// `cutoff`: such a dependence edge can never bind (the value is ready
    /// before the load could possibly issue), so removing it changes
    /// neither node times nor binding attribution. [`CoreModel`] dispatch
    /// times are non-decreasing, so the current instruction's dispatch
    /// time is always a valid cutoff for a plain-core stream.
    pub fn prune_completed_by(&mut self, cutoff: u64) {
        self.last_store_complete.retain(|_, &mut t| t > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(fu: FuClass, latency: u64, deps: Vec<ModelDep>) -> ModelInst {
        ModelInst {
            fu,
            latency,
            deps,
            ..ModelInst::default()
        }
    }

    #[test]
    fn independent_insts_pipeline_at_width() {
        let mut m = CoreModel::new(&CoreConfig::ooo2());
        let times: Vec<InstTimes> = (0..8)
            .map(|_| m.issue(&simple(FuClass::Alu, 1, vec![])))
            .collect();
        // Two per cycle at the fetch stage.
        assert_eq!(times[0].fetch, times[1].fetch);
        assert_eq!(times[2].fetch, times[0].fetch + 1);
        assert_eq!(times[7].fetch, times[0].fetch + 3);
    }

    #[test]
    fn data_dependences_serialize() {
        let mut m = CoreModel::new(&CoreConfig::ooo4());
        let a = m.issue(&simple(FuClass::Alu, 1, vec![]));
        let b = m.issue(&simple(FuClass::Alu, 1, vec![ModelDep::data(a.complete)]));
        let c = m.issue(&simple(FuClass::Alu, 1, vec![ModelDep::data(b.complete)]));
        assert!(b.execute >= a.complete);
        assert!(c.execute >= b.complete);
        assert_eq!(c.complete - a.complete, 2); // 1 cycle per dependent ALU op
    }

    #[test]
    fn ooo_hides_long_latency_behind_independents() {
        let mut m = CoreModel::new(&CoreConfig::ooo4());
        let load = m.issue(&simple(FuClass::Mem, 100, vec![]));
        // Independent work issues long before the load completes.
        let indep = m.issue(&simple(FuClass::Alu, 1, vec![]));
        assert!(indep.complete < load.complete);
    }

    #[test]
    fn inorder_stalls_on_use_and_serializes_issue() {
        let mut m = CoreModel::new(&CoreConfig::io2());
        let load = m.issue(&simple(FuClass::Mem, 50, vec![]));
        let user = m.issue(&simple(
            FuClass::Alu,
            1,
            vec![ModelDep::data(load.complete)],
        ));
        let later = m.issue(&simple(FuClass::Alu, 1, vec![]));
        assert!(user.execute >= load.complete);
        // In-order: the independent instruction cannot issue before its elder.
        assert!(later.execute >= user.execute);
    }

    #[test]
    fn fu_contention_delays() {
        // OOO2 has one mul/div unit: two independent muls serialize.
        let mut m = CoreModel::new(&CoreConfig::ooo2());
        let a = m.issue(&simple(FuClass::MulDiv, 3, vec![]));
        let b = m.issue(&simple(FuClass::MulDiv, 3, vec![]));
        assert!(b.execute > a.execute);
    }

    #[test]
    fn mispredict_redirects_fetch() {
        let mut m = CoreModel::new(&CoreConfig::ooo2());
        let br = m.issue(&ModelInst {
            fu: FuClass::Alu,
            latency: 1,
            is_cond_branch: true,
            mispredicted: true,
            ..ModelInst::default()
        });
        let next = m.issue(&simple(FuClass::Alu, 1, vec![]));
        assert!(next.fetch >= br.complete + u64::from(m.config().mispredict_penalty));
        assert_eq!(m.events().mispredict_flushes, 1);
    }

    #[test]
    fn rob_occupancy_throttles_dispatch() {
        // Tiny ROB: a long-latency op at the head blocks dispatch of the
        // (rob_size+1)-th younger instruction until it commits.
        let mut cfg = CoreConfig::ooo2();
        cfg.rob_size = 4;
        let mut m = CoreModel::new(&cfg);
        let slow = m.issue(&simple(FuClass::Mem, 200, vec![]));
        let mut last = InstTimes::default();
        for _ in 0..6 {
            last = m.issue(&simple(FuClass::Alu, 1, vec![]));
        }
        assert!(
            last.dispatch >= slow.commit,
            "dispatch {} should stall past the slow op's commit {}",
            last.dispatch,
            slow.commit
        );
    }

    #[test]
    fn commit_is_in_order() {
        let mut m = CoreModel::new(&CoreConfig::ooo4());
        let slow = m.issue(&simple(FuClass::Mem, 80, vec![]));
        let fast = m.issue(&simple(FuClass::Alu, 1, vec![]));
        assert!(fast.complete < slow.complete);
        assert!(
            fast.commit >= slow.commit,
            "younger inst must not commit first"
        );
    }

    #[test]
    fn wider_core_is_not_slower() {
        let deps_chain = |m: &mut CoreModel| {
            let mut last = 0u64;
            for i in 0..200 {
                let deps = if i % 3 == 0 {
                    vec![]
                } else {
                    vec![ModelDep::data(last)]
                };
                last = m.issue(&simple(FuClass::Alu, 1, deps)).complete;
            }
            m.now()
        };
        let t2 = deps_chain(&mut CoreModel::new(&CoreConfig::ooo2()));
        let t6 = deps_chain(&mut CoreModel::new(&CoreConfig::ooo6()));
        assert!(t6 <= t2);
    }

    #[test]
    fn binding_counts_accumulate() {
        let mut m = CoreModel::new(&CoreConfig::ooo2());
        for _ in 0..10 {
            m.issue(&simple(FuClass::Alu, 1, vec![]));
        }
        let total: u64 = m.binding_counts().values().sum();
        assert_eq!(total, 40); // four attributed nodes per instruction
    }

    #[test]
    fn starting_at_offsets_first_fetch() {
        let mut m = CoreModel::starting_at(&CoreConfig::ooo2(), 1000);
        let t = m.issue(&simple(FuClass::Alu, 1, vec![]));
        assert!(t.fetch >= 1000);
    }

    #[test]
    fn memdep_tracker_word_overlap() {
        let mut t = MemDepTracker::new();
        t.record_store(0x1000, 8, 55);
        assert_eq!(t.load_dependence(0x1000, 8), Some(55));
        assert_eq!(t.load_dependence(0x1004, 4), Some(55)); // same word
        assert_eq!(t.load_dependence(0x1008, 8), None);
        // A 1-byte store still guards the containing word.
        t.record_store(0x2001, 1, 99);
        assert_eq!(t.load_dependence(0x2000, 8), Some(99));
        // Crossing access sees both words.
        t.record_store(0x3008, 8, 77);
        assert_eq!(t.load_dependence(0x3004, 8), Some(77));
    }
}
