//! Whole-trace evaluation: builds the original µDG (the paper's
//! `TDG_GPP,∅`) from a recorded trace and reports cycles, energy, and IPC.

use prism_energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use prism_sim::{RegDepTracker, Trace};

use crate::{
    BudgetExceeded, CoreConfig, CoreModel, ExecBudget, MemDepTracker, ModelDep, ModelInst,
    NODES_PER_INST,
};

/// Result of evaluating a trace on a core configuration.
#[derive(Debug, Clone)]
pub struct CoreRun {
    /// Core configuration name.
    pub config_name: String,
    /// Total cycles (time of the last commit).
    pub cycles: u64,
    /// Instructions modeled.
    pub insts: u64,
    /// Accumulated energy events.
    pub events: EnergyEvents,
    /// Energy breakdown for the run (core dynamic + leakage; no
    /// accelerator).
    pub energy: EnergyBreakdown,
    /// Binding-constraint tally (critical-path attribution).
    pub binding: crate::BindingCounts,
}

impl CoreRun {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Instructions per unit energy (the paper's IPE validation metric).
    #[must_use]
    pub fn ipe(&self) -> f64 {
        let e = self.energy.total();
        if e <= 0.0 {
            0.0
        } else {
            self.insts as f64 / (e * 1e9) // insts per nanojoule
        }
    }
}

/// Builds the [`ModelInst`] for one dynamic instruction of a trace.
///
/// Resolves register dependences through `regs` (producer completion
/// times in `p_times`) and memory dependences through `mems`.
#[must_use]
pub fn model_inst_for(
    trace: &Trace,
    d: &prism_sim::DynInst,
    regs: &RegDepTracker,
    p_times: &[u64],
    mems: &MemDepTracker,
) -> ModelInst {
    let inst = trace.static_inst(d);
    let mut deps: Vec<ModelDep> = regs
        .sources(inst)
        .into_iter()
        .map(|seq| ModelDep::data(p_times[seq as usize]))
        .collect();
    let mut latency = u64::from(inst.op.latency());
    let mut mem_level = None;
    let mut is_store = false;
    if let Some(m) = &d.mem {
        mem_level = Some(m.level);
        if m.is_store {
            is_store = true;
            latency = 1; // into the store buffer
        } else {
            latency = u64::from(m.latency);
            if let Some(ready) = mems.load_dependence(m.addr, m.width) {
                deps.push(ModelDep::memory(ready));
            }
        }
    }
    let reads = inst.sources().count() as u8;
    let writes = u8::from(inst.dest().is_some());
    ModelInst {
        fu: inst.fu_class(),
        latency,
        deps,
        mem_level,
        is_store,
        is_cond_branch: inst.op.is_cond_branch(),
        mispredicted: d.branch.is_some_and(|b| b.mispredicted),
        branch_taken: d.branch.is_some_and(|b| b.taken),
        vector: false,
        reads,
        writes,
    }
}

/// Evaluates `trace` on `config`, producing the baseline (no-accelerator)
/// performance and energy — the paper's `TDG_GPP,∅`.
///
/// # Examples
///
/// ```
/// use prism_isa::{ProgramBuilder, Reg};
/// use prism_udg::{simulate_trace, CoreConfig};
///
/// let (i, acc) = (Reg::int(1), Reg::int(2));
/// let mut b = ProgramBuilder::new("count");
/// b.init_reg(i, 50);
/// let head = b.bind_new_label();
/// b.add(acc, acc, i);
/// b.addi(i, i, -1);
/// b.bne_label(i, Reg::ZERO, head);
/// b.halt();
/// let trace = prism_sim::trace(&b.build()?)?;
/// let run = simulate_trace(&trace, &CoreConfig::ooo2());
/// assert!(run.ipc() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn simulate_trace(trace: &Trace, config: &CoreConfig) -> CoreRun {
    try_simulate_trace(trace, config, &ExecBudget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// [`simulate_trace`] under an [`ExecBudget`]: the evaluation charges
/// [`NODES_PER_INST`] fuel per instruction and stops with a typed error
/// instead of grinding through a pathologically long trace.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when the trace needs more µDG nodes than the
/// budget allows.
pub fn try_simulate_trace(
    trace: &Trace,
    config: &CoreConfig,
    budget: &ExecBudget,
) -> Result<CoreRun, BudgetExceeded> {
    let mut meter = budget.meter();
    let mut core = CoreModel::new(config);
    let mut regs = RegDepTracker::new();
    let mut mems = MemDepTracker::new();
    let mut p_times: Vec<u64> = Vec::with_capacity(trace.len());

    for d in &trace.insts {
        meter.charge(NODES_PER_INST)?;
        let mi = model_inst_for(trace, d, &regs, &p_times, &mems);
        let times = core.issue(&mi);
        p_times.push(times.complete);
        let inst = trace.static_inst(d);
        regs.retire(inst, d.seq);
        if let Some(m) = &d.mem {
            if m.is_store {
                mems.record_store(m.addr, m.width, times.complete);
            }
        }
    }

    Ok(finish_run(core, config, trace.len() as u64))
}

/// Packages a finished [`CoreModel`] into a [`CoreRun`], pricing its events
/// with the default [`EnergyModel`].
#[must_use]
pub fn finish_run(core: CoreModel, config: &CoreConfig, insts: u64) -> CoreRun {
    let cycles = core.now();
    let mut events = EnergyEvents::new();
    events.core = *core.events();
    let model = EnergyModel::new();
    let energy = model.breakdown(&events, &config.energy_config(), config.area_mm2(), cycles);
    CoreRun {
        config_name: config.name.clone(),
        cycles,
        insts,
        events,
        energy,
        binding: core.binding_counts().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{Program, ProgramBuilder, Reg};

    /// Data-parallel FP kernel: c[i] = a[i]*b[i] + c[i].
    fn dp_kernel(n: i64) -> Program {
        let (pa, pb, pc, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let (fa, fb, fc, ft) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x20000);
        b.init_reg(pc, 0x30000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fld(fb, pb, 0);
        b.fmul(ft, fa, fb);
        b.fld(fc, pc, 0);
        b.fadd(fc, ft, fc);
        b.fst(fc, pc, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(pc, pc, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    /// Serial pointer-chase-like kernel: long dependence chain.
    fn serial_kernel(n: i64) -> Program {
        let (x, i) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new("serial");
        b.init_reg(x, 1);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.mul(x, x, x);
        b.addi(x, x, 1);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn wider_ooo_cores_run_parallel_code_faster() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        let io2 = simulate_trace(&t, &CoreConfig::io2());
        let ooo2 = simulate_trace(&t, &CoreConfig::ooo2());
        let ooo6 = simulate_trace(&t, &CoreConfig::ooo6());
        assert!(
            ooo2.cycles < io2.cycles,
            "OOO2 {} !< IO2 {}",
            ooo2.cycles,
            io2.cycles
        );
        assert!(
            ooo6.cycles < ooo2.cycles,
            "OOO6 {} !< OOO2 {}",
            ooo6.cycles,
            ooo2.cycles
        );
        assert!(ooo6.ipc() > 1.5, "OOO6 ipc = {}", ooo6.ipc());
    }

    #[test]
    fn serial_code_does_not_scale_with_width() {
        let t = prism_sim::trace(&serial_kernel(500)).unwrap();
        let ooo2 = simulate_trace(&t, &CoreConfig::ooo2());
        let ooo6 = simulate_trace(&t, &CoreConfig::ooo6());
        // The mul chain limits both; OOO6 gains little.
        let speedup = ooo2.cycles as f64 / ooo6.cycles as f64;
        assert!(speedup < 1.2, "serial speedup suspiciously high: {speedup}");
    }

    #[test]
    fn bigger_cores_burn_more_energy() {
        let t = prism_sim::trace(&dp_kernel(300)).unwrap();
        let e2 = simulate_trace(&t, &CoreConfig::ooo2()).energy.total();
        let e6 = simulate_trace(&t, &CoreConfig::ooo6()).energy.total();
        assert!(e6 > e2, "OOO6 energy {e6} !> OOO2 energy {e2}");
    }

    #[test]
    fn ipc_bounded_by_width() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo4()] {
            let r = simulate_trace(&t, &cfg);
            assert!(
                r.ipc() <= f64::from(cfg.width),
                "{}: ipc {}",
                cfg.name,
                r.ipc()
            );
        }
    }

    #[test]
    fn store_load_forwarding_dependence_respected() {
        // st x → ld x → use: the load must wait for the store.
        let (a, v, w) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("stld");
        b.init_reg(a, 0x1000);
        b.init_reg(v, 42);
        b.st(v, a, 0);
        b.ld(w, a, 0);
        b.add(w, w, w);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo4());
        assert!(
            run.binding
                .get(&crate::EdgeKind::MemDep)
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn binding_counts_cover_all_insts() {
        let t = prism_sim::trace(&dp_kernel(50)).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo2());
        let total: u64 = run.binding.values().sum();
        assert_eq!(total, 4 * run.insts);
    }

    #[test]
    fn runaway_trace_trips_the_budget() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        // Budget for 10 instructions; the trace has thousands.
        let budget = ExecBudget::new(10 * NODES_PER_INST);
        let err = try_simulate_trace(&t, &CoreConfig::ooo2(), &budget)
            .expect_err("a 500-iteration kernel must blow a 10-inst budget");
        assert_eq!(err.max_nodes, 10 * NODES_PER_INST);
        // A budget sized for the whole trace succeeds and matches the
        // unbudgeted result.
        let roomy = ExecBudget::for_trace_insts(t.len() as u64, 1);
        let run = try_simulate_trace(&t, &CoreConfig::ooo2(), &roomy).expect("roomy budget");
        assert_eq!(run.cycles, simulate_trace(&t, &CoreConfig::ooo2()).cycles);
    }

    #[test]
    fn reference_sim_respects_budget() {
        let t = prism_sim::trace(&dp_kernel(200)).unwrap();
        let tight = ExecBudget::new(20);
        match crate::try_simulate_reference(&t, &CoreConfig::ooo2(), &tight) {
            Err(crate::Watchdog::Budget(e)) => assert_eq!(e.max_nodes, 20),
            other => panic!("expected budget trip, got {other:?}"),
        }
        let roomy = ExecBudget::unlimited();
        let run = crate::try_simulate_reference(&t, &CoreConfig::ooo2(), &roomy)
            .expect("unlimited reference run");
        assert_eq!(
            run.cycles,
            crate::simulate_reference(&t, &CoreConfig::ooo2()).cycles
        );
    }

    #[test]
    fn ipe_positive() {
        let t = prism_sim::trace(&dp_kernel(50)).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo2());
        assert!(run.ipe() > 0.0);
    }
}
