//! Whole-trace evaluation: builds the original µDG (the paper's
//! `TDG_GPP,∅`) from a recorded trace — or, chunk by chunk, from a
//! streaming [`TraceSource`] — and reports cycles, energy, and IPC.
//!
//! The evaluation state is O(window), not O(trace): node times are
//! finalized at insertion, and the only cross-instruction state is the
//! per-register last-writer completion time ([`RegTimes`]) plus the
//! memory-dependence footprint ([`MemDepTracker`]). Chunks can therefore
//! be dropped as soon as they are consumed.

use prism_energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use prism_isa::{Inst, Program, NUM_REGS};
use prism_sim::{DynInst, RegDepTracker, Trace, TraceChunk, TraceError, TraceSource};

use crate::{
    BudgetExceeded, CoreConfig, CoreModel, ExecBudget, FuelMeter, MemDepTracker, ModelDep,
    ModelInst, NODES_PER_INST,
};

/// Result of evaluating a trace on a core configuration.
#[derive(Debug, Clone)]
pub struct CoreRun {
    /// Core configuration name.
    pub config_name: String,
    /// Total cycles (time of the last commit).
    pub cycles: u64,
    /// Instructions modeled.
    pub insts: u64,
    /// Accumulated energy events.
    pub events: EnergyEvents,
    /// Energy breakdown for the run (core dynamic + leakage; no
    /// accelerator).
    pub energy: EnergyBreakdown,
    /// Binding-constraint tally (critical-path attribution).
    pub binding: crate::BindingCounts,
}

impl CoreRun {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Instructions per unit energy (the paper's IPE validation metric).
    #[must_use]
    pub fn ipe(&self) -> f64 {
        let e = self.energy.total();
        if e <= 0.0 {
            0.0
        } else {
            self.insts as f64 / (e * 1e9) // insts per nanojoule
        }
    }
}

/// Streaming register-time tracker: the completion time of every
/// architectural register's last writer.
///
/// This is the windowed replacement for an O(trace) `p_times` vector:
/// dependences are only ever resolved against the *current* last writer
/// of each source register, so one `u64` per register suffices — exactly
/// the paper's "times are finalized at insertion" property.
#[derive(Debug, Clone)]
pub struct RegTimes {
    regs: RegDepTracker,
    times: [u64; NUM_REGS as usize],
}

impl Default for RegTimes {
    fn default() -> Self {
        RegTimes {
            regs: RegDepTracker::new(),
            times: [0; NUM_REGS as usize],
        }
    }
}

impl RegTimes {
    /// Creates a tracker with no known producers.
    #[must_use]
    pub fn new() -> Self {
        RegTimes::default()
    }

    /// Data dependences of `inst`: one [`ModelDep::data`] per source
    /// register with a known producer, in source order (identical to
    /// resolving [`RegDepTracker::sources`] against producer times).
    #[must_use]
    pub fn data_deps(&self, inst: &Inst) -> Vec<ModelDep> {
        let mut deps = Vec::new();
        self.data_deps_into(inst, &mut deps);
        deps
    }

    /// [`RegTimes::data_deps`] into a caller-owned buffer (cleared first),
    /// so the per-instruction hot path reuses one allocation.
    pub fn data_deps_into(&self, inst: &Inst, deps: &mut Vec<ModelDep>) {
        deps.clear();
        for r in inst.sources() {
            if self.regs.writer_of(r).is_some() {
                deps.push(ModelDep::data(self.times[r.index()]));
            }
        }
    }

    /// Records that `inst` retired as dynamic instruction `seq`,
    /// completing at `complete`.
    pub fn retire(&mut self, inst: &Inst, seq: u64, complete: u64) {
        if let Some(d) = inst.dest() {
            self.times[d.index()] = complete;
        }
        self.regs.retire(inst, seq);
    }
}

/// Builds the [`ModelInst`] for one dynamic instruction.
///
/// Resolves register dependences through the streaming `regs` tracker and
/// memory dependences through `mems`.
#[must_use]
pub fn model_inst_for(
    program: &Program,
    d: &prism_sim::DynInst,
    regs: &RegTimes,
    mems: &MemDepTracker,
) -> ModelInst {
    let mut mi = ModelInst::default();
    model_inst_for_into(program, d, regs, mems, &mut mi);
    mi
}

/// [`model_inst_for`] into a caller-owned scratch [`ModelInst`]: every
/// field is overwritten and the dependence buffer is reused, so a streaming
/// evaluation allocates nothing per instruction.
pub fn model_inst_for_into(
    program: &Program,
    d: &prism_sim::DynInst,
    regs: &RegTimes,
    mems: &MemDepTracker,
    mi: &mut ModelInst,
) {
    let inst = program.inst(d.sid);
    regs.data_deps_into(inst, &mut mi.deps);
    let mut latency = u64::from(inst.op.latency());
    let mut mem_level = None;
    let mut is_store = false;
    if let Some(m) = &d.mem {
        mem_level = Some(m.level);
        if m.is_store {
            is_store = true;
            latency = 1; // into the store buffer
        } else {
            latency = u64::from(m.latency);
            if let Some(ready) = mems.load_dependence(m.addr, m.width) {
                mi.deps.push(ModelDep::memory(ready));
            }
        }
    }
    mi.fu = inst.fu_class();
    mi.latency = latency;
    mi.mem_level = mem_level;
    mi.is_store = is_store;
    mi.is_cond_branch = inst.op.is_cond_branch();
    mi.mispredicted = d.branch.is_some_and(|b| b.mispredicted);
    mi.branch_taken = d.branch.is_some_and(|b| b.taken);
    mi.vector = false;
    mi.reads = inst.sources().count() as u8;
    mi.writes = u8::from(inst.dest().is_some());
}

/// Evaluates `trace` on `config`, producing the baseline (no-accelerator)
/// performance and energy — the paper's `TDG_GPP,∅`.
///
/// # Examples
///
/// ```
/// use prism_isa::{ProgramBuilder, Reg};
/// use prism_udg::{simulate_trace, CoreConfig};
///
/// let (i, acc) = (Reg::int(1), Reg::int(2));
/// let mut b = ProgramBuilder::new("count");
/// b.init_reg(i, 50);
/// let head = b.bind_new_label();
/// b.add(acc, acc, i);
/// b.addi(i, i, -1);
/// b.bne_label(i, Reg::ZERO, head);
/// b.halt();
/// let trace = prism_sim::trace(&b.build()?)?;
/// let run = simulate_trace(&trace, &CoreConfig::ooo2());
/// assert!(run.ipc() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn simulate_trace(trace: &Trace, config: &CoreConfig) -> CoreRun {
    try_simulate_trace(trace, config, &ExecBudget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// [`simulate_trace`] under an [`ExecBudget`]: the evaluation charges
/// [`NODES_PER_INST`] fuel per instruction and stops with a typed error
/// instead of grinding through a pathologically long trace.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when the trace needs more µDG nodes than the
/// budget allows.
pub fn try_simulate_trace(
    trace: &Trace,
    config: &CoreConfig,
    budget: &ExecBudget,
) -> Result<CoreRun, BudgetExceeded> {
    let mut sim = StreamSim::new(config, budget);
    for d in &trace.insts {
        sim.step(&trace.program, d)?;
    }
    Ok(sim.finish(config))
}

/// Store-footprint entries between prune passes of a [`StreamSim`]. Pruning
/// rescans the footprint, so the watermark re-arms at twice the surviving
/// size (amortized O(1) per instruction), never below this floor.
const MEM_PRUNE_FLOOR: usize = 4096;

/// Incremental µDG evaluation engine: feed dynamic instructions (or whole
/// [`TraceChunk`]s) as they are produced; state stays O(window).
#[derive(Debug)]
pub struct StreamSim {
    core: CoreModel,
    regs: RegTimes,
    mems: MemDepTracker,
    meter: FuelMeter,
    insts: u64,
    /// Reused per-instruction model buffer (no per-inst allocation).
    scratch: ModelInst,
    mem_prune_watermark: usize,
}

impl StreamSim {
    /// Creates an engine for `config` under `budget`.
    #[must_use]
    pub fn new(config: &CoreConfig, budget: &ExecBudget) -> Self {
        StreamSim {
            core: CoreModel::new(config),
            regs: RegTimes::new(),
            mems: MemDepTracker::new(),
            meter: budget.meter(),
            insts: 0,
            scratch: ModelInst::default(),
            mem_prune_watermark: MEM_PRUNE_FLOOR,
        }
    }

    /// Issues one dynamic instruction into the model.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] if charging [`NODES_PER_INST`] fuel trips
    /// the budget.
    pub fn step(&mut self, program: &Program, d: &DynInst) -> Result<(), BudgetExceeded> {
        self.meter.charge(NODES_PER_INST)?;
        model_inst_for_into(program, d, &self.regs, &self.mems, &mut self.scratch);
        let times = self.core.issue(&self.scratch);
        let inst = program.inst(d.sid);
        self.regs.retire(inst, d.seq, times.complete);
        if let Some(m) = &d.mem {
            if m.is_store {
                self.mems.record_store(m.addr, m.width, times.complete);
            }
        }
        // Keep the store footprint O(live): dispatch times are
        // non-decreasing, so any store that completed by this dispatch can
        // never delay a later load — dropping it is timing-exact.
        if self.mems.len() >= self.mem_prune_watermark {
            self.mems.prune_completed_by(times.dispatch);
            self.mem_prune_watermark = (self.mems.len() * 2).max(MEM_PRUNE_FLOOR);
        }
        self.insts += 1;
        Ok(())
    }

    /// Issues every instruction of `chunk`.
    ///
    /// # Errors
    ///
    /// See [`StreamSim::step`].
    pub fn feed_chunk(
        &mut self,
        program: &Program,
        chunk: &TraceChunk,
    ) -> Result<(), BudgetExceeded> {
        for d in &chunk.insts {
            self.step(program, d)?;
        }
        Ok(())
    }

    /// Instructions issued so far.
    #[must_use]
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Finalizes the run into a [`CoreRun`].
    #[must_use]
    pub fn finish(self, config: &CoreConfig) -> CoreRun {
        finish_run(self.core, config, self.insts)
    }
}

/// Error from a source-driven evaluation: either the evaluation budget
/// tripped or the underlying simulator faulted while producing the trace.
#[derive(Debug)]
pub enum SourceSimError {
    /// The µDG node budget was exhausted.
    Budget(BudgetExceeded),
    /// The functional simulator failed to produce the next chunk.
    Trace(TraceError),
}

impl std::fmt::Display for SourceSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceSimError::Budget(e) => write!(f, "{e}"),
            SourceSimError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceSimError {}

impl From<BudgetExceeded> for SourceSimError {
    fn from(e: BudgetExceeded) -> Self {
        SourceSimError::Budget(e)
    }
}

impl From<TraceError> for SourceSimError {
    fn from(e: TraceError) -> Self {
        SourceSimError::Trace(e)
    }
}

/// Evaluates `config` over the chunks of `source`, overlapping simulation
/// with evaluation and never holding more than one chunk in memory.
///
/// # Errors
///
/// Returns [`SourceSimError::Budget`] when the node budget trips, or
/// [`SourceSimError::Trace`] when the simulator faults.
pub fn try_simulate_source<S: TraceSource>(
    source: &mut S,
    config: &CoreConfig,
    budget: &ExecBudget,
) -> Result<CoreRun, SourceSimError> {
    let mut sim = StreamSim::new(config, budget);
    while let Some(chunk) = source.next_chunk()? {
        sim.feed_chunk(source.program(), &chunk)?;
        if chunk.last {
            break;
        }
    }
    Ok(sim.finish(config))
}

/// [`try_simulate_source`] with an unlimited budget; still surfaces
/// simulator faults.
///
/// # Errors
///
/// Returns [`TraceError`] when the simulator faults mid-stream.
pub fn simulate_source<S: TraceSource>(
    source: &mut S,
    config: &CoreConfig,
) -> Result<CoreRun, TraceError> {
    match try_simulate_source(source, config, &ExecBudget::unlimited()) {
        Ok(run) => Ok(run),
        Err(SourceSimError::Trace(e)) => Err(e),
        Err(SourceSimError::Budget(_)) => unreachable!("unlimited budget cannot trip"),
    }
}

/// Packages a finished [`CoreModel`] into a [`CoreRun`], pricing its events
/// with the default [`EnergyModel`].
#[must_use]
pub fn finish_run(core: CoreModel, config: &CoreConfig, insts: u64) -> CoreRun {
    let cycles = core.now();
    let mut events = EnergyEvents::new();
    events.core = *core.events();
    let model = EnergyModel::new();
    let energy = model.breakdown(&events, &config.energy_config(), config.area_mm2(), cycles);
    CoreRun {
        config_name: config.name.clone(),
        cycles,
        insts,
        events,
        energy,
        binding: core.into_binding_counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{Program, ProgramBuilder, Reg};

    /// Data-parallel FP kernel: c[i] = a[i]*b[i] + c[i].
    fn dp_kernel(n: i64) -> Program {
        let (pa, pb, pc, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let (fa, fb, fc, ft) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x20000);
        b.init_reg(pc, 0x30000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fld(fb, pb, 0);
        b.fmul(ft, fa, fb);
        b.fld(fc, pc, 0);
        b.fadd(fc, ft, fc);
        b.fst(fc, pc, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(pc, pc, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    /// Serial pointer-chase-like kernel: long dependence chain.
    fn serial_kernel(n: i64) -> Program {
        let (x, i) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new("serial");
        b.init_reg(x, 1);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.mul(x, x, x);
        b.addi(x, x, 1);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn wider_ooo_cores_run_parallel_code_faster() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        let io2 = simulate_trace(&t, &CoreConfig::io2());
        let ooo2 = simulate_trace(&t, &CoreConfig::ooo2());
        let ooo6 = simulate_trace(&t, &CoreConfig::ooo6());
        assert!(
            ooo2.cycles < io2.cycles,
            "OOO2 {} !< IO2 {}",
            ooo2.cycles,
            io2.cycles
        );
        assert!(
            ooo6.cycles < ooo2.cycles,
            "OOO6 {} !< OOO2 {}",
            ooo6.cycles,
            ooo2.cycles
        );
        assert!(ooo6.ipc() > 1.5, "OOO6 ipc = {}", ooo6.ipc());
    }

    #[test]
    fn serial_code_does_not_scale_with_width() {
        let t = prism_sim::trace(&serial_kernel(500)).unwrap();
        let ooo2 = simulate_trace(&t, &CoreConfig::ooo2());
        let ooo6 = simulate_trace(&t, &CoreConfig::ooo6());
        // The mul chain limits both; OOO6 gains little.
        let speedup = ooo2.cycles as f64 / ooo6.cycles as f64;
        assert!(speedup < 1.2, "serial speedup suspiciously high: {speedup}");
    }

    #[test]
    fn bigger_cores_burn_more_energy() {
        let t = prism_sim::trace(&dp_kernel(300)).unwrap();
        let e2 = simulate_trace(&t, &CoreConfig::ooo2()).energy.total();
        let e6 = simulate_trace(&t, &CoreConfig::ooo6()).energy.total();
        assert!(e6 > e2, "OOO6 energy {e6} !> OOO2 energy {e2}");
    }

    #[test]
    fn ipc_bounded_by_width() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo4()] {
            let r = simulate_trace(&t, &cfg);
            assert!(
                r.ipc() <= f64::from(cfg.width),
                "{}: ipc {}",
                cfg.name,
                r.ipc()
            );
        }
    }

    #[test]
    fn store_load_forwarding_dependence_respected() {
        // st x → ld x → use: the load must wait for the store.
        let (a, v, w) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("stld");
        b.init_reg(a, 0x1000);
        b.init_reg(v, 42);
        b.st(v, a, 0);
        b.ld(w, a, 0);
        b.add(w, w, w);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo4());
        assert!(
            run.binding
                .get(&crate::EdgeKind::MemDep)
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn binding_counts_cover_all_insts() {
        let t = prism_sim::trace(&dp_kernel(50)).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo2());
        let total: u64 = run.binding.values().sum();
        assert_eq!(total, 4 * run.insts);
    }

    #[test]
    fn runaway_trace_trips_the_budget() {
        let t = prism_sim::trace(&dp_kernel(500)).unwrap();
        // Budget for 10 instructions; the trace has thousands.
        let budget = ExecBudget::new(10 * NODES_PER_INST);
        let err = try_simulate_trace(&t, &CoreConfig::ooo2(), &budget)
            .expect_err("a 500-iteration kernel must blow a 10-inst budget");
        assert_eq!(err.max_nodes, 10 * NODES_PER_INST);
        // A budget sized for the whole trace succeeds and matches the
        // unbudgeted result.
        let roomy = ExecBudget::for_trace_insts(t.len() as u64, 1);
        let run = try_simulate_trace(&t, &CoreConfig::ooo2(), &roomy).expect("roomy budget");
        assert_eq!(run.cycles, simulate_trace(&t, &CoreConfig::ooo2()).cycles);
    }

    #[test]
    fn reference_sim_respects_budget() {
        let t = prism_sim::trace(&dp_kernel(200)).unwrap();
        let tight = ExecBudget::new(20);
        match crate::try_simulate_reference(&t, &CoreConfig::ooo2(), &tight) {
            Err(crate::Watchdog::Budget(e)) => assert_eq!(e.max_nodes, 20),
            other => panic!("expected budget trip, got {other:?}"),
        }
        let roomy = ExecBudget::unlimited();
        let run = crate::try_simulate_reference(&t, &CoreConfig::ooo2(), &roomy)
            .expect("unlimited reference run");
        assert_eq!(
            run.cycles,
            crate::simulate_reference(&t, &CoreConfig::ooo2()).cycles
        );
    }

    #[test]
    fn ipe_positive() {
        let t = prism_sim::trace(&dp_kernel(50)).unwrap();
        let run = simulate_trace(&t, &CoreConfig::ooo2());
        assert!(run.ipe() > 0.0);
    }

    #[test]
    fn streaming_source_matches_materialized_trace() {
        let p = dp_kernel(300);
        let t = prism_sim::trace(&p).unwrap();
        let whole = simulate_trace(&t, &CoreConfig::ooo2());
        // Drive the same evaluation straight off the simulator with a tiny
        // chunk size so several chunk boundaries land mid-loop.
        let mut src = prism_sim::SimSource::new(&p, &prism_sim::TracerConfig::default())
            .unwrap()
            .with_chunk_size(257);
        let streamed = simulate_source(&mut src, &CoreConfig::ooo2()).unwrap();
        assert_eq!(streamed.cycles, whole.cycles);
        assert_eq!(streamed.insts, whole.insts);
        assert_eq!(streamed.energy.total(), whole.energy.total());
        assert_eq!(streamed.binding, whole.binding);
    }

    #[test]
    fn source_budget_trips_mid_stream() {
        let p = dp_kernel(500);
        let mut src = prism_sim::SimSource::new(&p, &prism_sim::TracerConfig::default()).unwrap();
        let budget = ExecBudget::new(10 * NODES_PER_INST);
        match try_simulate_source(&mut src, &CoreConfig::ooo2(), &budget) {
            Err(SourceSimError::Budget(e)) => assert_eq!(e.max_nodes, 10 * NODES_PER_INST),
            other => panic!("expected budget trip, got {other:?}"),
        }
    }
}
