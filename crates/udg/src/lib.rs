//! # prism-udg
//!
//! The microarchitectural dependence graph (µDG) — the core-modeling half
//! of the TDG from *Analyzing Behavior Specialized Acceleration* (ASPLOS
//! 2016, §2).
//!
//! A µDG represents a dynamic execution as nodes for pipeline events
//! (fetch, dispatch, execute, complete, commit per instruction) and edges
//! for the constraints between them: pipeline widths, ROB/window occupancy,
//! data and memory dependences, functional-unit contention, and branch
//! mispredict redirects. Execution time is the longest path through the
//! graph.
//!
//! This crate provides:
//!
//! * [`CoreConfig`] — the paper's Table 4 core design points (IO2, OOO2,
//!   OOO4, OOO6) plus parametric widths for validation,
//! * [`CoreModel`] — a streaming timing model that assigns the five µDG
//!   node times per instruction in a single forward pass,
//! * [`DepGraph`] — a general longest-path dependence graph used by
//!   accelerator models and for critical-path inspection,
//! * [`ResourceTable`] — the windowed cycle-indexed structural-hazard
//!   table described in the paper's §2.7,
//! * [`simulate_trace`] — whole-trace evaluation producing the paper's
//!   baseline `TDG_GPP,∅` cycles and energy.
//!
//! # Examples
//!
//! ```
//! use prism_udg::{CoreConfig, CoreModel, ModelInst};
//!
//! let mut core = CoreModel::new(&CoreConfig::ooo4());
//! let t = core.issue(&ModelInst::default());
//! assert!(t.commit > t.fetch);
//! ```

#![warn(missing_docs)]

mod budget;
mod config;
mod graph;
mod model;
mod reference;
mod resource;
mod run;
mod seqtable;

pub use budget::{BudgetExceeded, ExecBudget, FuelMeter, NODES_PER_INST};
pub use config::CoreConfig;
pub use graph::{DepGraph, EdgeKind, NodeId, Provenance};
pub use model::{BindingCounts, CoreModel, InstTimes, MemDepTracker, ModelDep, ModelInst};
pub use reference::{simulate_reference, try_simulate_reference, ReferenceRun, Watchdog};
pub use resource::ResourceTable;
pub use run::{
    finish_run, model_inst_for, model_inst_for_into, simulate_source, simulate_trace,
    try_simulate_source, try_simulate_trace, CoreRun, RegTimes, SourceSimError, StreamSim,
};
pub use seqtable::{FastBuildHasher, FastHasher, FastMap, FastSet, SeqTable};
