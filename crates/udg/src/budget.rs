//! Execution budgets: bounded fuel for the µDG critical-path engine and
//! everything built on top of it.
//!
//! A µDG evaluation is a single forward pass, so its cost is proportional
//! to the number of graph nodes it places (five per instruction). An
//! [`ExecBudget`] caps that node count; exceeding it yields a typed
//! [`BudgetExceeded`] error instead of an open-ended run — the timing-model
//! counterpart of [`prism_sim::TracerConfig::max_insts`], which bounds the
//! *functional* side the same way.

/// µDG nodes placed per modeled instruction (fetch, dispatch, execute,
/// complete, commit).
pub const NODES_PER_INST: u64 = 5;

/// A cap on the number of µDG nodes one evaluation unit may place.
///
/// The default is [`ExecBudget::unlimited`]; pipelines opt in to a finite
/// budget per evaluation unit (one trace simulation, one oracle table, one
/// design point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecBudget {
    /// Maximum µDG nodes this budget allows.
    pub max_nodes: u64,
}

impl Default for ExecBudget {
    fn default() -> Self {
        ExecBudget::unlimited()
    }
}

impl ExecBudget {
    /// A finite budget of `max_nodes` µDG nodes.
    #[must_use]
    pub fn new(max_nodes: u64) -> Self {
        ExecBudget { max_nodes }
    }

    /// No cap (`u64::MAX` nodes).
    #[must_use]
    pub fn unlimited() -> Self {
        ExecBudget {
            max_nodes: u64::MAX,
        }
    }

    /// A budget sized from a tracer's instruction cap: enough for
    /// `runs` full-length evaluations of a `max_insts`-instruction trace.
    #[must_use]
    pub fn for_trace_insts(max_insts: u64, runs: u64) -> Self {
        ExecBudget {
            max_nodes: max_insts
                .saturating_mul(NODES_PER_INST)
                .saturating_mul(runs.max(1)),
        }
    }

    /// Whether this budget can never trip.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes == u64::MAX
    }

    /// Starts metering against this budget.
    #[must_use]
    pub fn meter(&self) -> FuelMeter {
        FuelMeter {
            max_nodes: self.max_nodes,
            used: 0,
        }
    }
}

/// Running fuel counter for one evaluation unit.
#[derive(Debug, Clone)]
pub struct FuelMeter {
    max_nodes: u64,
    used: u64,
}

impl FuelMeter {
    /// Charges `nodes` against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] once the total charged passes the cap.
    pub fn charge(&mut self, nodes: u64) -> Result<(), BudgetExceeded> {
        self.used = self.used.saturating_add(nodes);
        if self.used > self.max_nodes {
            return Err(BudgetExceeded {
                used: self.used,
                max_nodes: self.max_nodes,
            });
        }
        Ok(())
    }

    /// Nodes charged so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }
}

/// An evaluation ran past its [`ExecBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Nodes the evaluation needed when it tripped.
    pub used: u64,
    /// The cap it tripped over.
    pub max_nodes: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "execution budget exceeded: {} uDG nodes needed, {} allowed",
            self.used, self.max_nodes
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = ExecBudget::unlimited().meter();
        m.charge(u64::MAX / 2).expect("unlimited");
        m.charge(u64::MAX / 2).expect("unlimited (saturating)");
        assert!(ExecBudget::default().is_unlimited());
    }

    #[test]
    fn finite_budget_trips_at_the_boundary() {
        let mut m = ExecBudget::new(10).meter();
        m.charge(10).expect("exactly at the cap is fine");
        let err = m.charge(1).expect_err("one past the cap trips");
        assert_eq!(err.max_nodes, 10);
        assert_eq!(err.used, 11);
        assert!(err.to_string().contains("budget exceeded"));
    }

    #[test]
    fn for_trace_insts_scales_with_runs() {
        let b = ExecBudget::for_trace_insts(1000, 3);
        assert_eq!(b.max_nodes, 1000 * NODES_PER_INST * 3);
        assert!(!b.is_unlimited());
    }
}
