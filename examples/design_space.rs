//! Design-space exploration over a handful of workloads: evaluates several
//! ExoCore design points and prints a miniature Fig. 12 plus the Pareto
//! frontier.
//!
//! Run with: `cargo run --release --example design_space`

use prism_exocore::{all_bsa_subsets, pareto_frontier, FrontierPoint};
use prism_pipeline::Session;
use prism_udg::CoreConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small cross-section of the registry: regular / semi-regular /
    // irregular workloads.
    let names = ["stencil", "mm", "cjpeg-1", "tpch1", "181.mcf", "458.sjeng"];
    println!("preparing {} workloads…", names.len());
    let session = Session::new();
    let data = names
        .iter()
        .map(|n| {
            let w = prism_workloads::by_name(n).expect(n);
            session.prepare(w)
        })
        .collect::<Result<Vec<_>, _>>()?;

    // Evaluate IO2 and OOO2 with every BSA subset — one explore_grid call;
    // the session parallelizes over (workload × design point).
    let cores = [CoreConfig::io2(), CoreConfig::ooo2()];
    let report = session.explore_grid(&data, &cores, &all_bsa_subsets());
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }

    let mut labeled: Vec<(String, FrontierPoint)> = Vec::new();
    let mut reference_cycles: Vec<u64> = Vec::new();
    let mut reference_energy: Vec<f64> = Vec::new();
    println!(
        "{:<14} {:>9} {:>11} {:>8}",
        "config", "speedup", "energy-eff", "area"
    );
    for result in report.results {
        if reference_cycles.is_empty() {
            reference_cycles = result.per_workload.iter().map(|m| m.cycles).collect();
            reference_energy = result.per_workload.iter().map(|m| m.energy).collect();
        }
        let speedup = prism_exocore::geomean(
            result
                .per_workload
                .iter()
                .zip(&reference_cycles)
                .map(|(m, &r)| r as f64 / m.cycles.max(1) as f64),
        );
        let eff = prism_exocore::geomean(
            result
                .per_workload
                .iter()
                .zip(&reference_energy)
                .map(|(m, &r)| r / m.energy),
        );
        println!(
            "{:<14} {:>9.2} {:>11.2} {:>8.2}",
            result.label, speedup, eff, result.area_mm2
        );
        labeled.push((
            result.label,
            FrontierPoint {
                perf: speedup,
                energy: 1.0 / eff,
            },
        ));
    }

    println!("\nPareto frontier (perf ↑, energy ↓):");
    for (label, p) in pareto_frontier(&labeled) {
        println!("  {:<14} perf {:.2}, energy {:.2}", label, p.perf, p.energy);
    }
    Ok(())
}
