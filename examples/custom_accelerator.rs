//! Modeling a *new* accelerator idea with the TDG — the paper's Appendix A
//! workflow (analysis → transform → scheduling) on the fused
//! multiply–add example of Fig. 4, plus a hand-rolled "super-fma" variant
//! to show how cheaply design variants can be compared.
//!
//! Run with: `cargo run --release --example custom_accelerator`

use prism_isa::{Opcode, ProgramBuilder, Reg};
use prism_tdg::fma::{analyze_fma, simulate_with_fma, FmaPlan};
use prism_udg::{simulate_trace, CoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 4 style kernel: out[i] = a[i]*k + m.
    let (pa, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (fa, fk, fm, ft) = (Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
    let mut b = ProgramBuilder::new("fma-demo");
    b.init_reg(pa, 0x10000);
    b.init_reg(po, 0x24000);
    b.init_reg(i, 1500);
    b.fli(fk, 3.0);
    b.fli(fm, 1.0);
    let head = b.bind_new_label();
    b.fld(fa, pa, 0);
    b.fmul(ft, fa, fk);
    b.fadd(ft, ft, fm);
    b.fst(ft, po, 0);
    b.addi(pa, pa, 8);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    let program = b.build()?;
    let trace = prism_sim::trace(&program)?;
    let ir = prism_ir::ProgramIr::analyze(&trace);

    // Step 1 (Appendix A "Analysis"): find fusable pairs.
    let plan = analyze_fma(&ir, &trace);
    println!("fma analyzer found {} fusable pair(s)", plan.len());
    for (fadd, fmul) in &plan.fused {
        println!(
            "  fuse {} @{fmul} into {} @{fadd}",
            trace.program.inst(*fmul),
            trace.program.inst(*fadd)
        );
    }

    // Step 2 (Appendix A "Transformations"): model the transformed µDG.
    for cfg in [CoreConfig::io2(), CoreConfig::ooo2()] {
        let base = simulate_trace(&trace, &cfg);
        let fused = simulate_with_fma(&trace, &cfg, &plan);
        println!(
            "{:>5}: {} → {} cycles ({:+.1}%), fp ops {} → {}",
            cfg.name,
            base.cycles,
            fused.cycles,
            100.0 * (fused.cycles as f64 / base.cycles as f64 - 1.0),
            base.events.core.fp_ops,
            fused.events.core.fp_ops,
        );
    }

    // Step 3: iterate on the design — what if fusion were *illegal* for
    // multi-use multiplies? Compare against an empty plan in one line.
    let nothing = simulate_with_fma(&trace, &CoreConfig::ooo2(), &FmaPlan::default());
    let with = simulate_with_fma(&trace, &CoreConfig::ooo2(), &plan);
    println!(
        "\ndesign-variant comparison on OOO2: no-fusion {} vs fusion {} cycles",
        nothing.cycles, with.cycles
    );
    println!("(the TDG makes variants like this a plan-object swap — no compiler or RTL rebuild)");

    // Bonus: show the static opcode the transform introduces is barred
    // from authored programs.
    let mut bad = ProgramBuilder::new("illegal");
    bad.emit(prism_isa::Inst::rrr(
        Opcode::Fma,
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
    ));
    bad.halt();
    assert!(bad.build().is_err(), "authored fma must be rejected");
    println!("authored `fma` correctly rejected by program validation");
    Ok(())
}
