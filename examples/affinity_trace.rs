//! Region-affinity analysis of a real multi-phase workload: which unit
//! executes which part of a JPEG-encode analogue, and how the ExoCore
//! switches over time (the paper's Fig. 13/14 views for one benchmark).
//!
//! Run with: `cargo run --release --example affinity_trace`

use prism_exocore::{oracle_schedule, switching_timeline};
use prism_pipeline::Session;
use prism_tdg::{run_exocore, BsaKind, ExecUnit};
use prism_udg::CoreConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = prism_workloads::by_name("cjpeg-1").expect("registered workload");
    let data = Session::new().prepare(w)?;
    let core = CoreConfig::ooo2();

    println!(
        "workload: {} ({} dynamic insts, {} loops)",
        w.name,
        data.trace.len(),
        data.ir.loops.len()
    );
    for l in &data.ir.loops.loops {
        println!(
            "  loop {}: {} static insts, {} iterations, {:.0}% of execution",
            l.id,
            l.static_size(&data.ir.cfg),
            l.iterations,
            100.0 * l.dyn_insts as f64 / data.trace.len() as f64
        );
    }

    let schedule = oracle_schedule(&data, &core, &BsaKind::ALL);
    println!("\noracle schedule:");
    for (lid, kind) in &schedule.map {
        println!("  loop {lid} → {kind}");
    }

    let run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &schedule,
        &BsaKind::ALL,
    );
    println!("\nper-unit breakdown (Fig. 13 view):");
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "unit", "insts", "cycles", "energy (µJ)"
    );
    for u in ExecUnit::ALL {
        println!(
            "{:<10} {:>10} {:>10} {:>12.3}",
            u.to_string(),
            run.unit_insts[u as usize],
            run.unit_cycles[u as usize],
            run.unit_energy[u as usize] * 1e6
        );
    }

    println!("\nswitching timeline (Fig. 14 view):");
    let window = (data.trace.len() as u64 / 24).max(100);
    for p in switching_timeline(&data, &core, &schedule, &BsaKind::ALL, window) {
        let bar = "#".repeat((p.speedup * 10.0).round().clamp(1.0, 50.0) as usize);
        println!(
            "  @{:>7}: {:>5.2}x {:<8} {}",
            p.end_seq,
            p.speedup,
            p.dominant_unit.to_string(),
            bar
        );
    }
    Ok(())
}
