//! Quickstart: author a kernel, trace it, model it on two cores, then let
//! the TDG accelerate it on an ExoCore.
//!
//! Run with: `cargo run --release --example quickstart`

use prism_exocore::oracle_schedule;
use prism_isa::{ProgramBuilder, Reg};
use prism_pipeline::Session;
use prism_tdg::{run_exocore, BsaKind};
use prism_udg::{simulate_trace, CoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a kernel in the mini-ISA: y[i] = a*x[i] + y[i] (daxpy).
    let (px, py, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (fa, fx, fy) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    let mut b = ProgramBuilder::new("daxpy");
    b.init_reg(px, 0x10000);
    b.init_reg(py, 0x24000);
    b.init_reg(i, 2000);
    b.fli(fa, 2.5);
    let head = b.bind_new_label();
    b.fld(fx, px, 0);
    b.fld(fy, py, 0);
    b.fmul(fx, fx, fa);
    b.fadd(fy, fy, fx);
    b.fst(fy, py, 0);
    b.addi(px, px, 8);
    b.addi(py, py, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    let program = b.build()?;

    // 2. Trace it (functional simulation + cache/branch models).
    let trace = prism_sim::trace(&program)?;
    println!("traced {} dynamic instructions", trace.stats.insts);
    println!(
        "  loads {}, stores {}, branches {}, mispredicts {}",
        trace.stats.loads, trace.stats.stores, trace.stats.cond_branches, trace.stats.mispredicts
    );

    // 3. Model the baseline cores with the µDG.
    for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
        let run = simulate_trace(&trace, &cfg);
        println!(
            "{:>5}: {:>8} cycles, IPC {:.2}, energy {:.2} µJ",
            cfg.name,
            run.cycles,
            run.ipc(),
            run.energy.total() * 1e6
        );
    }

    // 4. Build the IR + BSA plans through the pipeline (a second run of
    //    this process would hit the session memo) and run a full ExoCore
    //    with the Oracle scheduler.
    let session = Session::new();
    let data = session.prepare_program(&program)?;
    let core = CoreConfig::ooo2();
    let schedule = oracle_schedule(&data, &core, &BsaKind::ALL);
    println!("\noracle schedule: {:?}", schedule.map);
    let exo = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &schedule,
        &BsaKind::ALL,
    );
    let base = simulate_trace(&trace, &core);
    println!(
        "OOO2 ExoCore: {} cycles ({:.2}x speedup), energy {:.2} µJ ({:.2}x more efficient)",
        exo.cycles,
        base.cycles as f64 / exo.cycles as f64,
        exo.energy.total() * 1e6,
        base.energy.total() / exo.energy.total()
    );
    println!(
        "unaccelerated instruction fraction: {:.1}%",
        exo.unaccelerated_fraction() * 100.0
    );
    Ok(())
}
