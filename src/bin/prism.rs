//! `prism` — command-line front end to the modeling framework.
//!
//! ```text
//! prism list                          list registered workloads
//! prism run <workload> [options]      model one workload
//!     --core IO2|OOO2|OOO4|OOO6       host core          (default OOO2)
//!     --bsa  <subset of SDNT>|none    BSAs present       (default SDNT)
//!     --scheduler oracle|amdahl       BSA selection      (default oracle)
//!     -n <size>                       problem size       (default per workload)
//! prism compare <workload>            4 cores × {bare, full ExoCore}
//! prism explore [--stats] [--resume]  full 64-point design space (cached)
//! prism grid [options]                the same sweep on worker processes
//!     --workers N                     local worker fleet size (default
//!                                     PRISM_WORKERS; else 2, or 0 with --hosts)
//!     --hosts host:port,...           remote worker daemons (default PRISM_HOSTS)
//!     --shard-retries K               cross-shard retries per unit (default 1)
//!     --stats                         print grid + session counters
//!     --resume                        replay the sweep journal, skip settled units
//! prism worker --listen <host:port>   serve grid workers over TCP (daemon);
//!     [--store PATH]                  shared secret via PRISM_NET_TOKEN
//!     [--store-cap BYTES]             LRU byte cap on the daemon store
//!                                     (default PRISM_STORE_CAP; 0 = unbounded)
//! prism fsck [--dir PATH]             check/repair an artifact store
//!                                     (quarantines corrupt artifacts, GCs orphan
//!                                     tmp files and stale journals; exit 1 on
//!                                     corruption)
//! prism bench [options]               perf microbench suite (BENCH_<rev>.json)
//!     --quick                         microbenches + MICRO-registry explore only
//!     --iters N                       iterations per microbench (default 10)
//!     --out PATH                      report path (default BENCH_<rev>.json)
//!     --compare PATH                  fail (exit 1) on >40% regression vs PATH
//!
//! Global options: --jobs N            worker threads (default: PRISM_JOBS
//!                                     or hardware parallelism)
//! ```
//!
//! All preparation runs through the `prism-pipeline` session, so repeated
//! invocations reuse the content-addressed artifact store; `prism grid`
//! shares that store across its worker fleet and produces output
//! byte-identical to `prism explore`.

use prism::exocore::{amdahl_schedule, oracle_schedule, DesignResult};
use prism::grid::{run_grid, workers_from_env, GridConfig};
use prism::pipeline::{flag_from_args, jobs_from_args, PreparedWorkload, Session, SweepReport};
use prism::tdg::{run_exocore, BsaKind, ExecUnit};
use prism::udg::{simulate_trace, CoreConfig};

fn main() {
    // Worker mode: the grid coordinator re-invokes this binary with
    // PRISM_GRID_WORKER=1; stdout then carries the wire protocol, so
    // nothing may print before this check.
    prism::grid::run_worker_if_env();

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let session = match jobs_from_args(&args) {
        Some(jobs) => Session::new().with_jobs(jobs),
        None => Session::new(),
    };
    strip_jobs_flag(&mut args);
    let stats = flag_from_args(&args, "--stats");
    args.retain(|a| a != "--stats");
    let resume = flag_from_args(&args, "--resume");
    args.retain(|a| a != "--resume");
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&session, &args[1..]),
        Some("compare") => cmd_compare(&session, &args[1..]),
        Some("explore") => cmd_explore(&session, stats, resume),
        Some("grid") => cmd_grid(&args[1..], stats, resume),
        Some("worker") => cmd_worker(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        _ => {
            eprintln!(
                "usage: prism <list|run|compare|explore|grid|worker|bench|fsck> [args]   (see --help in the source header)"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Removes `--jobs N` / `--jobs=N` (already consumed by the session).
fn strip_jobs_flag(args: &mut Vec<String>) {
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        args.drain(i..(i + 2).min(args.len()));
    } else if let Some(i) = args.iter().position(|a| a.starts_with("--jobs=")) {
        args.remove(i);
    }
}

/// The `explore`/`grid` result table (stdout; identical for both paths).
fn print_results_table(results: &[DesignResult]) {
    println!("{:<12} {:>8} {:>12}", "label", "area", "workloads");
    for r in results {
        println!(
            "{:<12} {:>8.2} {:>12}",
            r.label,
            r.area_mm2,
            r.per_workload.len()
        );
    }
}

fn finish_sweep(report: &SweepReport) -> i32 {
    print_results_table(&report.results);
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }
    report.exit_code()
}

fn cmd_explore(session: &Session, stats: bool, resume: bool) -> i32 {
    // The CLI sweep always journals, so a killed `prism explore` can be
    // finished with `prism explore --resume`.
    let report = session.full_design_space_resumable(resume);
    let code = finish_sweep(&report);
    session.log_stats();
    if stats {
        eprint!("{}", session.stats().render());
    }
    code
}

fn cmd_fsck(args: &[String]) -> i32 {
    use prism::pipeline::{run_fsck, ArtifactStore};

    let mut dir = ArtifactStore::default_dir();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => match it.next() {
                Some(v) => dir = v.into(),
                None => {
                    eprintln!("error: --dir needs a path");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown flag {other} (usage: prism fsck [--dir PATH])");
                return 2;
            }
        }
    }
    match run_fsck(&dir) {
        Ok(report) => {
            print!("{}", report.render(&dir));
            i32::from(!report.is_clean())
        }
        Err(e) => {
            eprintln!("error: fsck {}: {e}", dir.display());
            1
        }
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    use prism::bench::perf::{regressions, run, PerfOptions, PerfReport};

    let mut opts = PerfOptions::default();
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--iters" => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(v) => opts.iters = v.max(1),
                None => {
                    eprintln!("error: --iters needs a number");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("error: --out needs a path");
                    return 2;
                }
            },
            "--compare" => match it.next() {
                Some(v) => compare = Some(v.clone()),
                None => {
                    eprintln!("error: --compare needs a path");
                    return 2;
                }
            },
            other => {
                eprintln!(
                    "error: unknown flag {other} (usage: prism bench [--quick] [--iters N] [--out PATH] [--compare PATH])"
                );
                return 2;
            }
        }
    }

    let report = run(&opts);
    println!("{:<32} {:>16}", "metric", "value");
    println!(
        "{:<32} {:>16.1}",
        "calibration_mops", report.calibration_mops
    );
    for (name, value) in &report.metrics {
        println!("{name:<32} {value:>16.3}");
    }

    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", report.rev));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("error: cannot write {path}: {e}");
        return 1;
    }
    eprintln!("[prism-bench] wrote {path}");

    if let Some(baseline_path) = compare {
        let Ok(text) = std::fs::read_to_string(&baseline_path) else {
            eprintln!("error: cannot read baseline {baseline_path}");
            return 1;
        };
        let Some(baseline) = PerfReport::from_json(&text) else {
            eprintln!("error: baseline {baseline_path} is not a perf report");
            return 1;
        };
        // 40 %: wide enough that best-of sampling plus calibration
        // absorbs shared-runner noise, far below the 2×+ a real
        // composition/hot-loop regression would show.
        let regs = regressions(&baseline, &report, 0.40);
        if regs.is_empty() {
            eprintln!(
                "[prism-bench] no regressions vs {baseline_path} (rev {})",
                baseline.rev
            );
        } else {
            for r in &regs {
                eprintln!("[prism-bench] REGRESSION {r}");
            }
            return 1;
        }
    }
    0
}

fn cmd_grid(args: &[String], stats: bool, resume: bool) -> i32 {
    use prism::net::{hosts_from_env, parse_hosts};

    let mut workers: Option<usize> = None;
    let mut shard_retries = 1usize;
    let mut hosts_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
                .and_then(|v| v.parse::<usize>().map_err(|e| format!("bad {flag}: {e}")))
        };
        match flag.as_str() {
            "--workers" => match value(it.next()) {
                Ok(v) => workers = Some(v),
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--shard-retries" => match value(it.next()) {
                Ok(v) => shard_retries = v,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            },
            "--hosts" => match it.next() {
                Some(v) => hosts_arg = Some(v.clone()),
                None => {
                    eprintln!("error: --hosts needs a host:port list");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown flag {other} (usage: prism grid [--workers N] [--hosts host:port,...] [--shard-retries K] [--stats] [--resume])");
                return 2;
            }
        }
    }
    let hosts = match &hosts_arg {
        Some(text) => match parse_hosts(text) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: --hosts: {e}");
                return 2;
            }
        },
        None => match hosts_from_env() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {}: {e}", prism::net::HOSTS_ENV);
                return 2;
            }
        },
    };
    // With remote hosts configured, an unstated worker count means "all
    // remote": spawning local shards must be asked for explicitly.
    let workers = workers
        .or_else(workers_from_env)
        .unwrap_or(if hosts.is_empty() { 2 } else { 0 });
    let mut config = GridConfig::full_space(workers);
    config.hosts = hosts;
    config.shard_retries = shard_retries;
    config.resume = resume;
    match run_grid(&config) {
        Ok(outcome) => {
            let code = finish_sweep(&outcome.report);
            if stats {
                eprint!("{}", outcome.stats.render());
            }
            code
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_worker(args: &[String]) -> i32 {
    use prism::net::NET_TOKEN_ENV;
    use prism::pipeline::ArtifactStore;

    let mut listen: Option<String> = None;
    let mut store_dir = ArtifactStore::default_dir();
    let mut store_cap = prism::pipeline::store_cap_from_env();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = Some(v.clone()),
                None => {
                    eprintln!("error: --listen needs a host:port address");
                    return 2;
                }
            },
            "--store" => match it.next() {
                Some(v) => store_dir = v.into(),
                None => {
                    eprintln!("error: --store needs a path");
                    return 2;
                }
            },
            "--store-cap" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => store_cap = (v > 0).then_some(v),
                _ => {
                    eprintln!("error: --store-cap needs a byte count (0 disables the cap)");
                    return 2;
                }
            },
            other => {
                eprintln!(
                    "error: unknown flag {other} (usage: prism worker --listen <host:port> [--store PATH] [--store-cap BYTES])"
                );
                return 2;
            }
        }
    }
    let Some(addr) = listen else {
        eprintln!("usage: prism worker --listen <host:port> [--store PATH] [--store-cap BYTES]");
        return 2;
    };
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            return 1;
        }
    };
    let bound = listener
        .local_addr()
        .map_or_else(|_| addr.clone(), |a| a.to_string());
    // The listening line goes to stderr: stdout stays free in case the
    // daemon is ever composed into a pipeline.
    eprintln!("[prism-net] listening on {bound}");
    let token = std::env::var(NET_TOKEN_ENV).unwrap_or_default();
    if token.is_empty() {
        eprintln!("[prism-net] warning: {NET_TOKEN_ENV} unset — accepting unauthenticated peers");
    }
    if let Some(cap) = store_cap {
        eprintln!("[prism-net] store cap: {cap} bytes (LRU eviction)");
    }
    prism::grid::serve_tcp(listener, token, store_dir, store_cap)
}

fn cmd_list() -> i32 {
    println!("{:<14} {:<11} {:<12} default-n", "name", "suite", "class");
    for w in prism::workloads::ALL {
        println!(
            "{:<14} {:<11} {:<12} {}",
            w.name,
            w.suite.name(),
            format!("{:?}", w.class()),
            w.default_n
        );
    }
    println!(
        "\n({} workloads; microbenchmarks: prism::workloads::MICRO)",
        prism::workloads::ALL.len()
    );
    0
}

fn parse_core(s: &str) -> Option<CoreConfig> {
    match s.to_ascii_uppercase().as_str() {
        "IO2" => Some(CoreConfig::io2()),
        "OOO2" => Some(CoreConfig::ooo2()),
        "OOO4" => Some(CoreConfig::ooo4()),
        "OOO6" => Some(CoreConfig::ooo6()),
        _ => None,
    }
}

fn parse_bsas(s: &str) -> Option<Vec<BsaKind>> {
    if s.eq_ignore_ascii_case("none") {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    for c in s.to_ascii_uppercase().chars() {
        out.push(match c {
            'S' => BsaKind::Simd,
            'D' => BsaKind::DpCgra,
            'N' => BsaKind::NsDf,
            'T' => BsaKind::TraceP,
            _ => return None,
        });
    }
    Some(out)
}

struct RunOpts {
    workload: String,
    core: CoreConfig,
    bsas: Vec<BsaKind>,
    scheduler: String,
    n: Option<u32>,
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut it = args.iter();
    let workload = it.next().ok_or("missing workload name")?.clone();
    let mut opts = RunOpts {
        workload,
        core: CoreConfig::ooo2(),
        bsas: BsaKind::ALL.to_vec(),
        scheduler: "oracle".into(),
        n: None,
    };
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--core" => {
                let v = take()?;
                opts.core = parse_core(&v).ok_or(format!("unknown core {v}"))?;
            }
            "--bsa" => {
                let v = take()?;
                opts.bsas = parse_bsas(&v).ok_or(format!("bad BSA set {v}"))?;
            }
            "--scheduler" => opts.scheduler = take()?,
            "-n" => {
                opts.n = Some(take()?.parse().map_err(|e| format!("bad -n: {e}"))?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn prepare(session: &Session, name: &str, n: Option<u32>) -> Result<PreparedWorkload, String> {
    let w = prism::workloads::by_name(name)
        .or_else(|| prism::workloads::MICRO.iter().find(|m| m.name == name))
        .ok_or_else(|| format!("unknown workload {name} (try `prism list`)"))?;
    session
        .prepare_sized(w, n.unwrap_or(w.default_n))
        .map_err(|e| e.to_string())
}

fn cmd_run(session: &Session, args: &[String]) -> i32 {
    let opts = match parse_run_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let data = match prepare(session, &opts.workload, opts.n) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let core = if opts.bsas.contains(&BsaKind::Simd) {
        opts.core.clone().with_simd()
    } else {
        opts.core.clone()
    };

    println!(
        "{}: {} dynamic insts, {} loops",
        data.name,
        data.trace.len(),
        data.ir.loops.len()
    );
    let base = simulate_trace(&data.trace, &opts.core);
    println!(
        "baseline {}: {} cycles (IPC {:.2}), {:.3} µJ",
        opts.core.name,
        base.cycles,
        base.ipc(),
        base.energy.total() * 1e6
    );
    if opts.bsas.is_empty() {
        return 0;
    }
    let schedule = match opts.scheduler.as_str() {
        "oracle" => oracle_schedule(&data, &core, &opts.bsas),
        "amdahl" => amdahl_schedule(&data, &core, &opts.bsas),
        s => {
            eprintln!("error: unknown scheduler {s}");
            return 2;
        }
    };
    for (lid, kind) in &schedule.map {
        println!("  loop {lid} → {kind}");
    }
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &schedule,
        &opts.bsas,
    );
    println!(
        "ExoCore: {} cycles ({:.2}x), {:.3} µJ ({:.2}x energy-eff), area {:.2} mm²",
        run.cycles,
        base.cycles as f64 / run.cycles.max(1) as f64,
        run.energy.total() * 1e6,
        base.energy.total() / run.energy.total(),
        run.area_mm2
    );
    for u in ExecUnit::ALL {
        if run.unit_insts[u as usize] > 0 {
            println!(
                "  {:<8} {:>7} insts {:>8} cycles {:>9.3} µJ",
                u.to_string(),
                run.unit_insts[u as usize],
                run.unit_cycles[u as usize],
                run.unit_energy[u as usize] * 1e6
            );
        }
    }
    0
}

fn cmd_compare(session: &Session, args: &[String]) -> i32 {
    let Some(name) = args.first() else {
        eprintln!("usage: prism compare <workload>");
        return 2;
    };
    let data = match prepare(session, name, None) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "{:<6} {:>10} {:>7} | {:>10} {:>7} {:>8}",
        "core", "bare cyc", "µJ", "exo cyc", "µJ", "speedup"
    );
    for core in [
        CoreConfig::io2(),
        CoreConfig::ooo2(),
        CoreConfig::ooo4(),
        CoreConfig::ooo6(),
    ] {
        let base = simulate_trace(&data.trace, &core);
        let exo_core = core.clone().with_simd();
        let schedule = oracle_schedule(&data, &exo_core, &BsaKind::ALL);
        let run = run_exocore(
            &data.trace,
            &data.ir,
            &exo_core,
            &data.plans,
            &schedule,
            &BsaKind::ALL,
        );
        println!(
            "{:<6} {:>10} {:>7.3} | {:>10} {:>7.3} {:>7.2}x",
            core.name,
            base.cycles,
            base.energy.total() * 1e6,
            run.cycles,
            run.energy.total() * 1e6,
            base.cycles as f64 / run.cycles.max(1) as f64
        );
    }
    0
}
