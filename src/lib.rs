//! # prism
//!
//! Umbrella crate for the Prism workspace — a Rust reproduction of
//! *Analyzing Behavior Specialized Acceleration* (Nowatzki &
//! Sankaralingam, ASPLOS 2016).
//!
//! Re-exports the sub-crates so downstream users can depend on one crate:
//!
//! * [`isa`] — the `exo` mini-ISA and program builder,
//! * [`sim`] — functional simulation, caches, branch prediction, tracing,
//! * [`udg`] — µDG core models and the critical-path engine,
//! * [`ir`] — CFG/DFG/loop/path-profile reconstruction,
//! * [`energy`] — energy/power/area models,
//! * [`tdg`] — the Transformable Dependence Graph and the four BSA models,
//! * [`exocore`] — schedulers and the design-space exploration,
//! * [`workloads`] — the 49-kernel benchmark registry,
//! * [`pipeline`] — the content-addressed, parallel evaluation pipeline
//!   ([`pipeline::Session`]),
//! * [`grid`] — the sharded multi-process sweep coordinator
//!   ([`grid::run_grid`]),
//! * [`net`] — the multi-host sweep fabric: shard links, the TCP worker
//!   daemon handshake, and network fault injection ([`net::ShardLink`]),
//! * [`bench`] — the figure/table harness and the perf microbench suite
//!   behind `prism bench` ([`bench::perf`]).
//!
//! See the repository's `README.md` for a tour and `DESIGN.md` for the
//! system inventory.
//!
//! # Examples
//!
//! ```
//! let w = prism::workloads::by_name("stencil").unwrap();
//! let trace = prism::sim::trace(&w.build_default())?;
//! let run = prism::udg::simulate_trace(&trace, &prism::udg::CoreConfig::ooo2());
//! assert!(run.ipc() > 0.0);
//! # Ok::<(), prism::sim::TraceError>(())
//! ```

#![warn(missing_docs)]

pub use prism_bench as bench;
pub use prism_energy as energy;
pub use prism_exocore as exocore;
pub use prism_grid as grid;
pub use prism_ir as ir;
pub use prism_isa as isa;
pub use prism_net as net;
pub use prism_pipeline as pipeline;
pub use prism_sim as sim;
pub use prism_tdg as tdg;
pub use prism_udg as udg;
pub use prism_workloads as workloads;
