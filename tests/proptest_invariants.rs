//! Property-based tests over the core data structures and models:
//! randomly generated programs and event streams must uphold the
//! framework's invariants.

use proptest::prelude::*;

use prism::isa::{FuClass, Inst, Opcode, Program, ProgramBuilder, Reg};
use prism::sim::{Memory, RegDepTracker};
use prism::udg::{CoreConfig, CoreModel, ModelDep, ModelInst, ResourceTable};

// ---------------------------------------------------------------------
// Random straight-line + loop program generation.
// ---------------------------------------------------------------------

/// An opcode-level random instruction for program generation.
#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8, u8, u8),
    AluImm(u8, u8, i8),
    Mul(u8, u8, u8),
    Load(u8, u8, u8),
    Store(u8, u8, u8),
    Fp(u8, u8, u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(a, b, c)| GenOp::Alu(a, b, c)),
        (1u8..12, 1u8..12, -8i8..8).prop_map(|(a, b, i)| GenOp::AluImm(a, b, i)),
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(a, b, c)| GenOp::Mul(a, b, c)),
        (1u8..12, 0u8..16, 1u8..12).prop_map(|(d, o, _)| GenOp::Load(d, o, 0)),
        (1u8..12, 0u8..16, 1u8..12).prop_map(|(v, o, _)| GenOp::Store(v, o, 0)),
        (1u8..12, 1u8..12, 1u8..12).prop_map(|(a, b, c)| GenOp::Fp(a, b, c)),
    ]
}

/// Builds a terminating program: a counted loop whose body is the random
/// op sequence (guaranteed induction + exit).
fn build_program(body: &[GenOp], trips: i64) -> Program {
    let base = Reg::int(20);
    let i = Reg::int(21);
    let mut b = ProgramBuilder::new("prop");
    b.init_reg(base, 0x1_0000);
    b.init_reg(i, trips);
    let head = b.bind_new_label();
    for op in body {
        match *op {
            GenOp::Alu(d, s1, s2) => {
                b.add(Reg::int(d), Reg::int(s1), Reg::int(s2));
            }
            GenOp::AluImm(d, s, imm) => {
                b.addi(Reg::int(d), Reg::int(s), i64::from(imm));
            }
            GenOp::Mul(d, s1, s2) => {
                b.mul(Reg::int(d), Reg::int(s1), Reg::int(s2));
            }
            GenOp::Load(d, off, _) => {
                b.ld(Reg::int(d), base, i64::from(off) * 8);
            }
            GenOp::Store(v, off, _) => {
                b.st(Reg::int(v), base, i64::from(off) * 8);
            }
            GenOp::Fp(d, s1, s2) => {
                b.fadd(Reg::fp(d), Reg::fp(s1), Reg::fp(s2));
            }
        }
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("generated programs are structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_trace_and_model_consistently(
        body in proptest::collection::vec(gen_op(), 1..24),
        trips in 1i64..40,
    ) {
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        // Exact dynamic length: body + induction + branch per trip + halt.
        let expected = (body.len() as u64 + 2) * trips as u64 + 1;
        prop_assert_eq!(trace.stats.insts, expected);

        for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
            let run = prism::udg::simulate_trace(&trace, &cfg);
            // IPC is physically bounded by the width; cycles are nonzero.
            prop_assert!(run.cycles > 0);
            prop_assert!(run.ipc() <= f64::from(cfg.width) + 1e-9);
            // Energy must be positive and finite.
            let e = run.energy.total();
            prop_assert!(e.is_finite() && e > 0.0);
            // Commit count equals trace length (via event bookkeeping).
            prop_assert_eq!(run.events.core.commits, trace.stats.insts);
        }
    }

    #[test]
    fn udg_and_reference_stay_close_on_random_programs(
        body in proptest::collection::vec(gen_op(), 1..16),
        trips in 8i64..48,
    ) {
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        let cfg = CoreConfig::ooo2();
        let u = prism::udg::simulate_trace(&trace, &cfg);
        let r = prism::udg::simulate_reference(&trace, &cfg);
        prop_assert_eq!(r.insts, trace.stats.insts);
        let err = (u.ipc() - r.ipc()).abs() / r.ipc().max(1e-9);
        prop_assert!(
            err < 0.30,
            "models diverge: µDG {:.3} vs reference {:.3}", u.ipc(), r.ipc()
        );
    }

    #[test]
    fn memory_roundtrips_random_writes(
        writes in proptest::collection::vec((0u64..1_000_000, any::<u64>()), 1..64)
    ) {
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u64, u64> = Default::default();
        for (addr, val) in &writes {
            let addr = addr & !7; // aligned
            mem.write_u64(addr, *val);
            model.insert(addr, *val);
        }
        for (addr, val) in model {
            prop_assert_eq!(mem.read_u64(addr), val);
        }
    }

    #[test]
    fn resource_table_never_overcommits(
        units in 1u32..6,
        requests in proptest::collection::vec(0u64..500, 1..120)
    ) {
        let mut table = ResourceTable::new(units);
        let mut grants: std::collections::HashMap<u64, u32> = Default::default();
        for &earliest in &requests {
            let got = table.acquire(earliest);
            prop_assert!(got >= earliest || got >= *grants.keys().min().unwrap_or(&0));
            *grants.entry(got).or_insert(0) += 1;
        }
        for (cycle, count) in grants {
            prop_assert!(count <= units, "cycle {cycle} granted {count} > {units}");
        }
    }

    #[test]
    fn core_model_times_are_causally_ordered(
        latencies in proptest::collection::vec(1u64..20, 1..60)
    ) {
        let mut core = CoreModel::new(&CoreConfig::ooo4());
        let mut last_complete = 0u64;
        for (k, &lat) in latencies.iter().enumerate() {
            let deps = if k % 2 == 1 { vec![ModelDep::data(last_complete)] } else { vec![] };
            let mi = ModelInst { fu: FuClass::Alu, latency: lat, deps, ..ModelInst::default() };
            let t = core.issue(&mi);
            // The five node times are monotone within an instruction.
            prop_assert!(t.fetch <= t.dispatch);
            prop_assert!(t.dispatch <= t.execute);
            prop_assert!(t.execute < t.complete);
            prop_assert!(t.complete < t.commit);
            prop_assert_eq!(t.complete, t.execute + lat);
            if k % 2 == 1 {
                prop_assert!(t.execute >= last_complete, "dependence violated");
            }
            last_complete = t.complete;
        }
    }

    #[test]
    fn reg_dep_tracker_matches_naive_last_writer(
        ops in proptest::collection::vec((1u8..10, 1u8..10, 1u8..10), 1..80)
    ) {
        let mut tracker = RegDepTracker::new();
        let mut naive: std::collections::HashMap<usize, u64> = Default::default();
        for (seq, &(d, s1, s2)) in ops.iter().enumerate() {
            let inst = Inst::rrr(Opcode::Add, Reg::int(d), Reg::int(s1), Reg::int(s2));
            let expected: Vec<u64> = inst
                .sources()
                .filter_map(|r| naive.get(&r.index()).copied())
                .collect();
            prop_assert_eq!(tracker.sources(&inst), expected);
            tracker.retire(&inst, seq as u64);
            naive.insert(Reg::int(d).index(), seq as u64);
        }
    }

    #[test]
    fn program_ir_loop_invariants(
        body in proptest::collection::vec(gen_op(), 1..12),
        trips in 4i64..32,
    ) {
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        let ir = prism::ir::ProgramIr::analyze(&trace);
        // Exactly one loop; its dynamic stats match the construction.
        prop_assert_eq!(ir.loops.len(), 1);
        let l = ir.loops.innermost().next().unwrap();
        prop_assert_eq!(l.iterations, trips as u64);
        prop_assert_eq!(l.entries, 1);
        prop_assert_eq!(u64::from(l.static_size(&ir.cfg)), body.len() as u64 + 2);
        // The induction register is always classified as an induction.
        let regs = &ir.regs[&l.id];
        let induction_found = matches!(
            regs.carried.get(&Reg::int(21)),
            Some(prism::ir::CarriedClass::Induction { step: -1 })
        );
        prop_assert!(induction_found);
    }
}
