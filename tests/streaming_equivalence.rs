//! Property: the streaming trace architecture is invisible in results.
//!
//! Streaming mode (chunk artifacts persisted and replayed from the store)
//! and plain in-memory mode must produce *identical* [`SweepReport`]s —
//! over every registered workload, and under fault injection where a
//! `trace-truncate` fault lands mid-stream on a chunk site.
//!
//! The whole property lives in one `#[test]` because it pins `PRISM_CHUNK`
//! (so every trace spans many chunks) via the process environment, which
//! must not race with other tests in this binary.

use std::sync::Arc;

use prism::pipeline::{FaultPlan, Session, SweepReport};
use prism::sim::TracerConfig;
use prism::tdg::BsaKind;
use prism::udg::{CoreConfig, ExecBudget};
use prism::workloads::Workload;

/// Small chunk size so the ~10k-inst quick traces span ~3 chunks each.
const CHUNK: &str = "4096";

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 10_000,
        ..TracerConfig::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-streameq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn session(tag: &str, streaming: bool, faults: Option<Arc<FaultPlan>>) -> Session {
    Session::new()
        .with_tracer(quick_tracer())
        .with_store_dir(temp_dir(tag))
        .with_faults(faults)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(streaming)
}

fn sweep(s: &Session, workloads: &[&Workload]) -> SweepReport {
    let (data, failed) = s.prepare_quarantined(workloads);
    let mut report = s.explore_grid(
        &data,
        &[CoreConfig::ooo2()],
        &[vec![], BsaKind::ALL.to_vec()],
    );
    for (name, err) in failed {
        report.quarantined.push((format!("workload:{name}"), err));
    }
    report.sort_units();
    report
}

#[test]
fn streaming_and_in_memory_sweeps_are_identical() {
    std::env::set_var("PRISM_CHUNK", CHUNK);
    let workloads: Vec<&Workload> = prism::workloads::ALL.iter().collect();
    assert!(workloads.len() >= 49, "registry shrank?");

    // ---- Healthy runs: in-memory vs streaming vs chunk replay ----------
    let in_memory = sweep(&session("mem", false, None), &workloads);
    assert!(
        in_memory.quarantined.is_empty(),
        "healthy run quarantined: {:?}",
        in_memory.quarantined
    );

    let stream_store = temp_dir("stream");
    let first = Session::new()
        .with_tracer(quick_tracer())
        .with_store_dir(&stream_store)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(true);
    assert_eq!(sweep(&first, &workloads), in_memory);

    // A second streaming session over the same store replays the traces
    // from persisted chunk artifacts instead of re-simulating.
    let replay = Session::new()
        .with_tracer(quick_tracer())
        .with_store_dir(&stream_store)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(true);
    assert_eq!(sweep(&replay, &workloads), in_memory);
    let stats = replay.stats();
    assert!(
        stats.artifacts.hits > 0,
        "replay run should hit chunk artifacts: {stats:?}"
    );
    assert_eq!(
        stats.sim_insts, 0,
        "replay run should not re-simulate anything"
    );

    // ---- Fault-injected runs: truncation landing mid-stream ------------
    // The fault rolls are pure in (seed, site), so both modes see the same
    // truncations. Find a seed whose truncation lands on `mm:chunk1` — a
    // workload long enough (10k insts = 3 chunks here) that chunk 1 is
    // always reached, so the stream dies mid-trace, not at the gate.
    let mid_chunk_seed = (0..5000)
        .find(|&seed| {
            let plan = FaultPlan::seeded(seed).with_trace_truncate(0.002);
            !plan.truncate_trace("mm")
                && !plan.truncate_trace("mm:chunk0")
                && plan.truncate_trace("mm:chunk1")
        })
        .expect("some seed in 0..5000 truncates mm mid-stream");
    let plan = Arc::new(FaultPlan::seeded(mid_chunk_seed).with_trace_truncate(0.002));

    let faulted_mem = sweep(&session("fmem", false, Some(Arc::clone(&plan))), &workloads);
    let faulted_stream = sweep(&session("fstream", true, Some(plan)), &workloads);
    assert_eq!(faulted_mem, faulted_stream);
    assert!(
        faulted_mem
            .quarantined
            .iter()
            .any(|(_, e)| e.to_string().contains("truncated at chunk")),
        "expected a mid-stream chunk truncation: {:?}",
        faulted_mem.quarantined
    );
}
