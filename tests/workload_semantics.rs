//! Functional-correctness tests for the workload kernels: the programs are
//! not just timing stimuli — they must compute the right answers. Each
//! test runs the kernel to completion on the functional machine and checks
//! its output memory against a Rust reimplementation.

use prism::isa::Program;
use prism::sim::Machine;

/// Runs a program to completion and returns the machine.
fn run(program: &Program) -> Machine {
    let mut m = Machine::new(program);
    let mut steps = 0u64;
    while !m.is_halted() {
        m.step(program).expect("exec fault");
        steps += 1;
        assert!(steps < 50_000_000, "runaway kernel");
    }
    m
}

/// Reads back the initialized input array a workload placed in memory.
fn read_f64s(program: &Program, seg_idx: usize) -> (u64, Vec<f64>) {
    let seg = &program.data[seg_idx];
    let vals = seg
        .bytes
        .chunks(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (seg.addr, vals)
}

fn read_i64s(program: &Program, seg_idx: usize) -> (u64, Vec<i64>) {
    let seg = &program.data[seg_idx];
    let vals = seg
        .bytes
        .chunks(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (seg.addr, vals)
}

#[test]
fn conv_computes_the_five_tap_filter() {
    let n = 64usize;
    let program = (prism::workloads::by_name("conv").unwrap().build)(n as u32);
    let (in_addr, input) = read_f64s(&program, 0);
    let m = run(&program);
    // The output array starts after the input (allocator order).
    let weights = [0.1, 0.25, 0.3, 0.25, 0.1];
    // Find output base: first store address = input end + padding; easier:
    // recompute from the program's second register init (pout).
    let out_addr = program
        .reg_init
        .iter()
        .find(|(r, _)| r.index() == 2)
        .unwrap()
        .1 as u64;
    assert_ne!(out_addr, in_addr);
    for i in 0..n {
        let expected: f64 = (0..5).map(|k| input[i + k] * weights[k]).sum();
        let got = m.mem.read_f64(out_addr + (i * 8) as u64);
        assert!(
            (got - expected).abs() < 1e-9,
            "conv[{i}] = {got}, expected {expected}"
        );
    }
}

#[test]
fn merge_produces_sorted_output() {
    let n = 128usize;
    let program = (prism::workloads::by_name("merge").unwrap().build)(n as u32);
    let m = run(&program);
    let out_addr = program
        .reg_init
        .iter()
        .find(|(r, _)| r.index() == 3)
        .unwrap()
        .1 as u64;
    let merged: Vec<i64> = (0..2 * n - 2)
        .map(|i| m.mem.read_u64(out_addr + (i * 8) as u64) as i64)
        .collect();
    assert!(
        merged.windows(2).all(|w| w[0] <= w[1]),
        "merge output not sorted: {:?}…",
        &merged[..8]
    );
    // All elements positive (came from the sorted inputs, not junk).
    assert!(merged.iter().all(|&v| v > 0));
}

#[test]
fn sad_sums_absolute_differences() {
    let n = 200usize;
    let program = (prism::workloads::by_name("sad").unwrap().build)(n as u32);
    let (_, cur) = read_i64s(&program, 0);
    let (_, refr) = read_i64s(&program, 1);
    let m = run(&program);
    let expected: i64 = (0..n).map(|i| (cur[i] - refr[i]).abs()).sum();
    // The accumulator lives in r7.
    assert_eq!(m.reg(prism::isa::Reg::int(7)), expected);
}

#[test]
fn stencil_computes_weighted_neighbors() {
    let n = 64usize;
    let program = (prism::workloads::by_name("stencil").unwrap().build)(n as u32);
    let (_, input) = read_f64s(&program, 0);
    let m = run(&program);
    let out_addr = program
        .reg_init
        .iter()
        .find(|(r, _)| r.index() == 2)
        .unwrap()
        .1 as u64;
    for i in 0..n {
        let expected = 0.25 * input[i] + 0.5 * input[i + 1] + 0.25 * input[i + 2];
        let got = m.mem.read_f64(out_addr + (i * 8) as u64);
        assert!(
            (got - expected).abs() < 1e-9,
            "stencil[{i}] = {got} vs {expected}"
        );
    }
}

#[test]
fn mm_multiplies_matrices() {
    let dim = 8usize;
    let program = (prism::workloads::by_name("mm").unwrap().build)(dim as u32);
    let (_, a) = read_f64s(&program, 0);
    let (b_addr, b) = read_f64s(&program, 1);
    let m = run(&program);
    // C base: the third register init (pc, r6).
    let c_addr = program
        .reg_init
        .iter()
        .find(|(r, _)| r.index() == 6)
        .unwrap()
        .1 as u64;
    assert_ne!(c_addr, b_addr);
    for i in 0..dim {
        for j in 0..dim {
            let expected: f64 = (0..dim).map(|k| a[i * dim + k] * b[k * dim + j]).sum();
            let got = m.mem.read_f64(c_addr + ((i * dim + j) * 8) as u64);
            assert!(
                (got - expected).abs() < 1e-6,
                "C[{i}][{j}] = {got}, expected {expected}"
            );
        }
    }
}

#[test]
fn tpacf_histogram_counts_sum_to_n() {
    let n = 400usize;
    let program = (prism::workloads::by_name("tpacf").unwrap().build)(n as u32);
    let m = run(&program);
    let hist_addr = program
        .reg_init
        .iter()
        .find(|(r, _)| r.index() == 2)
        .unwrap()
        .1 as u64;
    let total: i64 = (0..32)
        .map(|i| m.mem.read_u64(hist_addr + i * 8) as i64)
        .sum();
    assert_eq!(total, n as i64, "histogram must count every sample once");
}

#[test]
fn mcf_chase_visits_the_whole_cycle() {
    // The pointer-chase array is a single cycle: after `nodes` steps the
    // cursor returns to 0. Run exactly that many iterations.
    let program = (prism::workloads::by_name("181.mcf").unwrap().build)(2048);
    let m = run(&program);
    assert_eq!(
        m.reg(prism::isa::Reg::int(4)),
        0,
        "chase should close its cycle"
    );
}

#[test]
fn treesearch_finds_plausible_indices() {
    let program = (prism::workloads::by_name("treesearch").unwrap().build)(64);
    let m = run(&program);
    // `found` accumulates binary-search result indices: all in [0, 4096].
    let acc = m.reg(prism::isa::Reg::int(10));
    assert!(
        (0..=64 * 4096).contains(&acc),
        "accumulated index sum {acc} out of range"
    );
}
