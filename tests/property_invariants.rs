//! Property-based tests over the core data structures and models:
//! randomly generated programs and event streams must uphold the
//! framework's invariants.
//!
//! Cases are driven by an in-repo SplitMix64 generator (proptest is not
//! available in this build environment), so every run explores the same
//! deterministic case set; a failing case's seed is its loop index.

use prism::isa::{FuClass, Inst, Opcode, Program, ProgramBuilder, Reg};
use prism::sim::{Memory, RegDepTracker};
use prism::udg::{CoreConfig, CoreModel, ModelDep, ModelInst, ResourceTable};

// ---------------------------------------------------------------------
// Deterministic case generator.
// ---------------------------------------------------------------------

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        // Decorrelate consecutive small seeds.
        Gen {
            state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn reg(&mut self) -> u8 {
        self.range(1, 12) as u8
    }
}

// ---------------------------------------------------------------------
// Random straight-line + loop program generation.
// ---------------------------------------------------------------------

/// An opcode-level random instruction for program generation.
#[derive(Debug, Clone)]
enum GenOp {
    Alu(u8, u8, u8),
    AluImm(u8, u8, i8),
    Mul(u8, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    Fp(u8, u8, u8),
}

fn gen_op(g: &mut Gen) -> GenOp {
    match g.range(0, 6) {
        0 => GenOp::Alu(g.reg(), g.reg(), g.reg()),
        1 => GenOp::AluImm(g.reg(), g.reg(), g.range(0, 16) as i8 - 8),
        2 => GenOp::Mul(g.reg(), g.reg(), g.reg()),
        3 => GenOp::Load(g.reg(), g.range(0, 16) as u8),
        4 => GenOp::Store(g.reg(), g.range(0, 16) as u8),
        _ => GenOp::Fp(g.reg(), g.reg(), g.reg()),
    }
}

fn gen_body(g: &mut Gen, min: u64, max: u64) -> Vec<GenOp> {
    (0..g.range(min, max)).map(|_| gen_op(g)).collect()
}

/// Builds a terminating program: a counted loop whose body is the random
/// op sequence (guaranteed induction + exit).
fn build_program(body: &[GenOp], trips: i64) -> Program {
    let base = Reg::int(20);
    let i = Reg::int(21);
    let mut b = ProgramBuilder::new("prop");
    b.init_reg(base, 0x1_0000);
    b.init_reg(i, trips);
    let head = b.bind_new_label();
    for op in body {
        match *op {
            GenOp::Alu(d, s1, s2) => {
                b.add(Reg::int(d), Reg::int(s1), Reg::int(s2));
            }
            GenOp::AluImm(d, s, imm) => {
                b.addi(Reg::int(d), Reg::int(s), i64::from(imm));
            }
            GenOp::Mul(d, s1, s2) => {
                b.mul(Reg::int(d), Reg::int(s1), Reg::int(s2));
            }
            GenOp::Load(d, off) => {
                b.ld(Reg::int(d), base, i64::from(off) * 8);
            }
            GenOp::Store(v, off) => {
                b.st(Reg::int(v), base, i64::from(off) * 8);
            }
            GenOp::Fp(d, s1, s2) => {
                b.fadd(Reg::fp(d), Reg::fp(s1), Reg::fp(s2));
            }
        }
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build()
        .expect("generated programs are structurally valid")
}

#[test]
fn random_programs_trace_and_model_consistently() {
    for case in 0..48u64 {
        let mut g = Gen::new(case);
        let body = gen_body(&mut g, 1, 24);
        let trips = g.range(1, 40) as i64;
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        // Exact dynamic length: body + induction + branch per trip + halt.
        let expected = (body.len() as u64 + 2) * trips as u64 + 1;
        assert_eq!(trace.stats.insts, expected, "case {case}");

        for cfg in [CoreConfig::io2(), CoreConfig::ooo2(), CoreConfig::ooo6()] {
            let run = prism::udg::simulate_trace(&trace, &cfg);
            // IPC is physically bounded by the width; cycles are nonzero.
            assert!(run.cycles > 0, "case {case}");
            assert!(run.ipc() <= f64::from(cfg.width) + 1e-9, "case {case}");
            // Energy must be positive and finite.
            let e = run.energy.total();
            assert!(e.is_finite() && e > 0.0, "case {case}");
            // Commit count equals trace length (via event bookkeeping).
            assert_eq!(run.events.core.commits, trace.stats.insts, "case {case}");
        }
    }
}

#[test]
fn udg_and_reference_stay_close_on_random_programs() {
    for case in 0..32u64 {
        let mut g = Gen::new(0x1000 + case);
        let body = gen_body(&mut g, 1, 16);
        let trips = g.range(8, 48) as i64;
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        let cfg = CoreConfig::ooo2();
        let u = prism::udg::simulate_trace(&trace, &cfg);
        let r = prism::udg::simulate_reference(&trace, &cfg);
        assert_eq!(r.insts, trace.stats.insts, "case {case}");
        let err = (u.ipc() - r.ipc()).abs() / r.ipc().max(1e-9);
        assert!(
            err < 0.30,
            "case {case}: models diverge: µDG {:.3} vs reference {:.3}",
            u.ipc(),
            r.ipc()
        );
    }
}

#[test]
fn memory_roundtrips_random_writes() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x2000 + case);
        let n = g.range(1, 64);
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..n {
            let addr = g.range(0, 1_000_000) & !7; // aligned
            let val = g.next();
            mem.write_u64(addr, val);
            model.insert(addr, val);
        }
        for (addr, val) in model {
            assert_eq!(mem.read_u64(addr), val, "case {case}");
        }
    }
}

#[test]
fn resource_table_never_overcommits() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x3000 + case);
        let units = g.range(1, 6) as u32;
        let n = g.range(1, 120);
        let mut table = ResourceTable::new(units);
        let mut grants: std::collections::HashMap<u64, u32> = Default::default();
        for _ in 0..n {
            let earliest = g.range(0, 500);
            let got = table.acquire(earliest);
            assert!(
                got >= earliest || got >= *grants.keys().min().unwrap_or(&0),
                "case {case}"
            );
            *grants.entry(got).or_insert(0) += 1;
        }
        for (cycle, count) in grants {
            assert!(
                count <= units,
                "case {case}: cycle {cycle} granted {count} > {units}"
            );
        }
    }
}

#[test]
fn core_model_times_are_causally_ordered() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x4000 + case);
        let latencies: Vec<u64> = (0..g.range(1, 60)).map(|_| g.range(1, 20)).collect();
        let mut core = CoreModel::new(&CoreConfig::ooo4());
        let mut last_complete = 0u64;
        for (k, &lat) in latencies.iter().enumerate() {
            let deps = if k % 2 == 1 {
                vec![ModelDep::data(last_complete)]
            } else {
                vec![]
            };
            let mi = ModelInst {
                fu: FuClass::Alu,
                latency: lat,
                deps,
                ..ModelInst::default()
            };
            let t = core.issue(&mi);
            // The five node times are monotone within an instruction.
            assert!(t.fetch <= t.dispatch, "case {case}");
            assert!(t.dispatch <= t.execute, "case {case}");
            assert!(t.execute < t.complete, "case {case}");
            assert!(t.complete < t.commit, "case {case}");
            assert_eq!(t.complete, t.execute + lat, "case {case}");
            if k % 2 == 1 {
                assert!(
                    t.execute >= last_complete,
                    "case {case}: dependence violated"
                );
            }
            last_complete = t.complete;
        }
    }
}

#[test]
fn reg_dep_tracker_matches_naive_last_writer() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x5000 + case);
        let n = g.range(1, 80);
        let mut tracker = RegDepTracker::new();
        let mut naive: std::collections::HashMap<usize, u64> = Default::default();
        for seq in 0..n {
            let (d, s1, s2) = (
                g.range(1, 10) as u8,
                g.range(1, 10) as u8,
                g.range(1, 10) as u8,
            );
            let inst = Inst::rrr(Opcode::Add, Reg::int(d), Reg::int(s1), Reg::int(s2));
            let expected: Vec<u64> = inst
                .sources()
                .filter_map(|r| naive.get(&r.index()).copied())
                .collect();
            assert_eq!(tracker.sources(&inst), expected, "case {case}");
            tracker.retire(&inst, seq);
            naive.insert(Reg::int(d).index(), seq);
        }
    }
}

#[test]
fn program_ir_loop_invariants() {
    for case in 0..32u64 {
        let mut g = Gen::new(0x6000 + case);
        let body = gen_body(&mut g, 1, 12);
        let trips = g.range(4, 32) as i64;
        let program = build_program(&body, trips);
        let trace = prism::sim::trace(&program).expect("traces");
        let ir = prism::ir::ProgramIr::analyze(&trace);
        // Exactly one loop; its dynamic stats match the construction.
        assert_eq!(ir.loops.len(), 1, "case {case}");
        let l = ir.loops.innermost().next().unwrap();
        assert_eq!(l.iterations, trips as u64, "case {case}");
        assert_eq!(l.entries, 1, "case {case}");
        assert_eq!(
            u64::from(l.static_size(&ir.cfg)),
            body.len() as u64 + 2,
            "case {case}"
        );
        // The induction register is always classified as an induction.
        let regs = &ir.regs[&l.id];
        let induction_found = matches!(
            regs.carried.get(&Reg::int(21)),
            Some(prism::ir::CarriedClass::Induction { step: -1 })
        );
        assert!(induction_found, "case {case}");
    }
}
