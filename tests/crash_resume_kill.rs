//! Kill-anywhere crash/resume property test (`harness = false`: this
//! binary re-invokes *itself* as the crashing child — and as a grid
//! worker — so it must own `main` and stdout).
//!
//! Property: for every `PRISM_CRASH` kill site, killing a sweep at that
//! site and re-running with `--resume` produces stdout byte-identical to
//! an uninterrupted run, replays every unit the journal recorded as done
//! (zero of them recomputed), and recomputes exactly the units whose
//! artifacts never became durable.
//!
//! Topology: the parent (this test) spawns children via `current_exe()`
//! with `PRISM_CRASH_KILL_CHILD=explore|grid`. The explore child runs a
//! journaled in-process sweep; the grid child runs a 2-worker grid whose
//! workers are further re-invocations of this binary. The parent injects
//! `PRISM_CRASH=<site>@<n>`, expects exit code 137, inspects the journal
//! and store it left behind, then resumes and diffs.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use prism::grid::{run_grid, run_worker_if_env, GridConfig};
use prism::pipeline::{
    journal_path, sweep_key, JournalReplay, Json, Session, SweepReport, CRASH_EXIT_CODE,
    SITE_GRID_FRAME, SITE_JOURNAL_APPEND, SITE_STORE_PUT, SITE_UNIT_COMPLETE,
};
use prism::sim::TracerConfig;
use prism::tdg::BsaKind;
use prism::udg::{CoreConfig, ExecBudget};
use prism::workloads::{Workload, MICRO};

const CHILD_ENV: &str = "PRISM_CRASH_KILL_CHILD";
const STORE_ENV: &str = "PRISM_TEST_STORE";
const RESUME_ENV: &str = "PRISM_TEST_RESUME";
const STATS_ENV: &str = "PRISM_TEST_STATS";
const MAX_INSTS: u64 = 20_000;

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: MAX_INSTS,
        ..TracerConfig::default()
    }
}

fn micro_set() -> Vec<&'static Workload> {
    MICRO.iter().take(3).collect()
}

fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (
        vec![CoreConfig::io2(), CoreConfig::ooo2()],
        vec![
            vec![],
            vec![BsaKind::Simd],
            vec![BsaKind::NsDf],
            BsaKind::ALL.to_vec(),
        ],
    )
}

fn test_sweep_key() -> prism::pipeline::ContentHash {
    let (cores, subsets) = small_grid();
    let workloads: Vec<(String, u32)> = micro_set()
        .iter()
        .map(|w| (w.name.to_string(), w.scaled_n()))
        .collect();
    sweep_key(&workloads, &quick_tracer(), &cores, &subsets)
}

/// Prints a report to stdout in a deterministic, byte-comparable form.
fn print_report(report: &SweepReport) {
    for r in &report.results {
        println!("{r:?}");
    }
    for (key, err) in &report.quarantined {
        println!("quarantined {key}: {err}");
    }
}

fn write_stats_file(line: String) {
    if let Ok(path) = std::env::var(STATS_ENV) {
        std::fs::write(path, line).expect("write stats file");
    }
}

/// Child mode: journaled in-process sweep over the small space.
fn child_explore() -> ! {
    let store = std::env::var(STORE_ENV).expect("child needs a store dir");
    let resume = std::env::var(RESUME_ENV).is_ok();
    let session = Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(2)
        .with_store_dir(PathBuf::from(store))
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(false);
    let (cores, subsets) = small_grid();
    let report = session.evaluate_designs_resumable(&micro_set(), &cores, &subsets, resume);
    print_report(&report);
    let stats = session.stats();
    // `recomputes` counts every store save — design results *and* timing
    // artifacts (one per trace walk performed) — so the parent subtracts
    // `walks` to recover the design-result recompute count.
    write_stats_file(format!(
        "resumed={} replayed={} recomputes={} walks={}\n",
        stats.resumed, stats.replayed, stats.artifacts.recomputes, stats.trace_walks
    ));
    std::process::exit(report.exit_code());
}

/// Child mode: 2-worker grid sweep over the same space. The workers are
/// re-invocations of this binary (caught by `run_worker_if_env`).
fn child_grid() -> ! {
    let store = PathBuf::from(std::env::var(STORE_ENV).expect("child needs a store dir"));
    let resume = std::env::var(RESUME_ENV).is_ok();
    let (cores, subsets) = small_grid();
    let config = GridConfig {
        workers: 2,
        hosts: Vec::new(),
        shard_retries: 1,
        workloads: micro_set().iter().map(|w| w.name.to_string()).collect(),
        cores,
        subsets,
        max_insts: MAX_INSTS,
        artifact_dir: store,
        worker_cmd: None, // this very binary, re-entered via main()
        heartbeat_timeout: Duration::from_secs(10),
        window: 2,
        env: Vec::new(),
        // Workers must not inherit the kill spec: the property under test
        // is a *coordinator* kill (worker deaths are grid_smoke's domain).
        env_remove: vec!["PRISM_CRASH".into(), CHILD_ENV.into()],
        net_faults: prism::net::NetFaultPlan::default(),
        resume,
    };
    match run_grid(&config) {
        Ok(outcome) => {
            print_report(&outcome.report);
            write_stats_file(format!(
                "resumed={} replayed={}\n",
                outcome.stats.resumed, outcome.stats.replayed
            ));
            std::process::exit(outcome.report.exit_code());
        }
        Err(e) => {
            eprintln!("grid error: {e}");
            std::process::exit(3);
        }
    }
}

struct ChildRun {
    status: Option<i32>,
    stdout: String,
}

fn run_child(mode: &str, store: &Path, crash: Option<&str>, resume: bool) -> ChildRun {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.env(CHILD_ENV, mode)
        .env(STORE_ENV, store)
        .env_remove("PRISM_CRASH")
        .env_remove(RESUME_ENV)
        .env_remove(STATS_ENV);
    if let Some(spec) = crash {
        cmd.env("PRISM_CRASH", spec);
    }
    if resume {
        cmd.env(RESUME_ENV, "1");
        cmd.env(STATS_ENV, store.join("stats.txt"));
    }
    let out = cmd.output().expect("spawn child");
    ChildRun {
        status: out.status.code(),
        stdout: String::from_utf8(out.stdout).expect("utf8 stdout"),
    }
}

/// Reads the `key=value` stats line the resumed child wrote.
fn read_stats(store: &Path, key: &str) -> u64 {
    let text = std::fs::read_to_string(store.join("stats.txt")).expect("stats file");
    text.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("stats line lacks {key}: {text:?}"))
}

/// Point-result artifacts currently durable in the store (top level only;
/// journals live in a subdirectory). Timing artifacts share the flat
/// namespace but are pure cache warmth, so they are told apart by their
/// payload shape (only timing summaries carry `timeline_len`) and
/// excluded from the recompute accounting.
fn artifacts_on_disk(store: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(store) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".json") && !n.contains(".tmp."))
        })
        .filter(|e| {
            std::fs::read_to_string(e.path())
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|doc| doc.get("payload").map(|p| p.get("timeline_len").is_none()))
                .unwrap_or(false)
        })
        .count() as u64
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One explore kill/resume round: kill at `site@hit`, then resume and
/// check byte-identity plus the recompute accounting.
fn explore_round(reference: &str, site: &str, hit: u64) {
    let total = 8u64; // 2 cores × 4 subsets
    let store = scratch(&format!("explore-{site}-{hit}"));
    let spec = format!("{site}@{hit}");

    let crashed = run_child("explore", &store, Some(&spec), false);
    assert_eq!(
        crashed.status,
        Some(CRASH_EXIT_CODE),
        "{spec}: child must die at the injected kill point"
    );

    // What survived the kill: the journal's done set and the durable
    // artifacts. `done ⊆ saved` because the store save precedes the
    // journal append.
    let sweep = test_sweep_key();
    let replay = JournalReplay::read(&journal_path(&store, &sweep), &sweep).expect("read journal");
    assert!(!replay.stale, "{spec}: journal must stay readable");
    let done = replay.done.len() as u64;
    let saved = artifacts_on_disk(&store);
    assert!(done <= saved, "{spec}: done={done} saved={saved}");

    let resumed = run_child("explore", &store, None, true);
    assert_eq!(resumed.status, Some(0), "{spec}: resume must finish clean");
    assert_eq!(
        resumed.stdout, reference,
        "{spec}: resumed stdout must be byte-identical"
    );
    assert_eq!(
        read_stats(&store, "resumed"),
        done,
        "{spec}: every journaled unit must be resumed"
    );
    assert_eq!(
        read_stats(&store, "recomputes") - read_stats(&store, "walks"),
        total - saved,
        "{spec}: only units without durable artifacts may recompute"
    );
    let _ = std::fs::remove_dir_all(&store);
}

fn scenario_explore_kill_everywhere() {
    let ref_store = scratch("explore-ref");
    let reference = run_child("explore", &ref_store, None, false);
    assert_eq!(reference.status, Some(0));
    assert!(!reference.stdout.is_empty());
    let _ = std::fs::remove_dir_all(&ref_store);

    for site in [SITE_STORE_PUT, SITE_JOURNAL_APPEND, SITE_UNIT_COMPLETE] {
        for hit in [1, 3] {
            explore_round(&reference.stdout, site, hit);
        }
    }
}

fn scenario_grid_coordinator_kill() {
    let ref_store = scratch("grid-ref");
    let reference = run_child("grid", &ref_store, None, false);
    assert_eq!(reference.status, Some(0));
    assert!(!reference.stdout.is_empty());
    let _ = std::fs::remove_dir_all(&ref_store);

    let store = scratch("grid-crash");
    let spec = format!("{SITE_GRID_FRAME}@2");
    let crashed = run_child("grid", &store, Some(&spec), false);
    assert_eq!(
        crashed.status,
        Some(CRASH_EXIT_CODE),
        "{spec}: coordinator must die at the injected kill point"
    );
    // Killed at frame 2: exactly the first frame's unit was journaled.
    let sweep = test_sweep_key();
    let replay = JournalReplay::read(&journal_path(&store, &sweep), &sweep).expect("read journal");
    assert_eq!(replay.done.len(), 1, "{spec}: one unit journaled pre-kill");

    let resumed = run_child("grid", &store, None, true);
    assert_eq!(resumed.status, Some(0), "{spec}: resume must finish clean");
    assert_eq!(
        resumed.stdout, reference.stdout,
        "{spec}: resumed grid stdout must be byte-identical"
    );
    assert_eq!(read_stats(&store, "resumed"), 1);
    let _ = std::fs::remove_dir_all(&store);
}

fn main() {
    // Worker mode first: the grid child's coordinator re-invokes this
    // binary with PRISM_GRID_WORKER=1, and nothing may touch stdout
    // before this.
    run_worker_if_env();

    // Child modes: crashing/resuming sweep processes spawned below.
    match std::env::var(CHILD_ENV).ok().as_deref() {
        Some("explore") => child_explore(),
        Some("grid") => child_grid(),
        Some(other) => {
            eprintln!("unknown {CHILD_ENV} mode {other}");
            std::process::exit(3);
        }
        None => {}
    }

    // Parent mode: insulate the whole tree (children inherit this
    // environment) from ambient knobs like the CI fault matrix.
    for var in [
        "PRISM_FAULTS",
        "PRISM_GRID_FAULTS",
        "PRISM_STREAM",
        "PRISM_JOBS",
        "PRISM_ARTIFACT_DIR",
        "PRISM_WORKERS",
        "PRISM_CRASH",
        "PRISM_SCALE",
        "PRISM_NO_COMPOSE",
        "PRISM_NO_TIMING_CACHE",
        "PRISM_STORE_CAP",
        "PRISM_DIVERGENCE",
        "PRISM_MAX_NODES",
        "PRISM_CHUNK",
        "PRISM_GRID_TIMEOUT_MS",
        "PRISM_NO_FSYNC",
        "PRISM_REFRESH",
        "PRISM_NET_FAULTS",
        "PRISM_NET_TOKEN",
        "PRISM_HOSTS",
        STORE_ENV,
        RESUME_ENV,
        STATS_ENV,
    ] {
        std::env::remove_var(var);
    }

    let scenarios: [(&str, fn()); 2] = [
        (
            "explore: kill at every site, resume byte-identical",
            scenario_explore_kill_everywhere,
        ),
        (
            "grid: kill coordinator mid-sweep, resume byte-identical",
            scenario_grid_coordinator_kill,
        ),
    ];
    let mut failed = 0;
    for (name, scenario) in scenarios {
        eprintln!("--- crash_resume_kill: {name}");
        match std::panic::catch_unwind(scenario) {
            Ok(()) => eprintln!("ok  - {name}"),
            Err(_) => {
                eprintln!("FAIL- {name}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} crash/resume scenario(s) failed");
        std::process::exit(1);
    }
    eprintln!("all crash/resume scenarios passed");
}
