//! Model-validation integration tests: the µDG core model against the
//! independent cycle-stepped reference simulator, and sanity bounds on the
//! BSA models (the Table 1 methodology as an automated check).

use prism::exocore::WorkloadData;
use prism::tdg::{run_exocore, Assignment, BsaKind};
use prism::udg::{simulate_reference, simulate_trace, CoreConfig};

fn traced(name: &str) -> prism::sim::Trace {
    let w = prism::workloads::by_name(name).unwrap_or_else(|| panic!("{name}"));
    prism::sim::trace(&(w.build)(w.default_n / 3 + 16)).expect(name)
}

#[test]
fn udg_matches_reference_within_15_percent_across_suites() {
    // One representative per suite; both 1-wide and 8-wide extremes.
    let names = [
        "stencil",
        "spmv",
        "cjpeg-1",
        "453.povray",
        "tpch1",
        "456.hmmer",
    ];
    let mut worst: f64 = 0.0;
    for name in names {
        let t = traced(name);
        for cfg in [CoreConfig::ooo(1), CoreConfig::ooo(8)] {
            let r = simulate_reference(&t, &cfg);
            let u = simulate_trace(&t, &cfg);
            assert_eq!(r.insts, t.len() as u64, "{name}: reference lost insts");
            let err = (r.ipc() - u.ipc()).abs() / r.ipc().max(1e-9);
            worst = worst.max(err);
            assert!(
                err < 0.15,
                "{name}/{}: µDG {:.3} vs reference {:.3} IPC ({:.0}% error)",
                cfg.name,
                u.ipc(),
                r.ipc(),
                err * 100.0
            );
        }
    }
    // Keep the bar honest: the typical error should be well under the cap.
    assert!(worst < 0.15);
}

#[test]
fn simd_model_bounds() {
    // Vector length 4: a perfect SIMD loop cannot exceed ~4x + mispredict
    // elimination headroom; it must never be pessimized below ~0.9x.
    let w = prism::workloads::by_name("stencil").unwrap();
    let data = WorkloadData::prepare(&w.build_default()).unwrap();
    let core = CoreConfig::ooo4();
    let base = simulate_trace(&data.trace, &core);
    let lid = *data.plans.simd.keys().next().expect("stencil vectorizes");
    let mut a = Assignment::none();
    a.set(lid, BsaKind::Simd);
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &a,
        &[BsaKind::Simd],
    );
    let speedup = base.cycles as f64 / run.cycles as f64;
    assert!(
        (0.9..=6.0).contains(&speedup),
        "SIMD speedup out of physical bounds: {speedup:.2}"
    );
    // SIMD cannot touch more lanes than exist.
    assert!(run.events.accel.vector_lane_ops <= 4 * data.trace.len() as u64);
}

#[test]
fn trace_p_replay_fraction_matches_path_profile() {
    // The irregular-branch loop of tpch1 has ~10% off-path iterations:
    // the Trace-P model's replay count must track the path profile.
    let w = prism::workloads::by_name("tpch1").unwrap();
    let data = WorkloadData::prepare(&w.build_default()).unwrap();
    let lid = *data
        .plans
        .trace_p
        .keys()
        .next()
        .expect("tpch1 has a hot trace");
    let prof = &data.ir.paths[&lid];
    let expected_off = prof.iterations - prof.hot_path().map_or(0, |(_, c)| *c);
    let mut a = Assignment::none();
    a.set(lid, BsaKind::TraceP);
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &CoreConfig::ooo2(),
        &data.plans,
        &a,
        &[BsaKind::TraceP],
    );
    let tol = expected_off / 5 + 8;
    assert!(
        run.trace_replays.abs_diff(expected_off) <= tol,
        "replays {} vs off-path iterations {}",
        run.trace_replays,
        expected_off
    );
}

#[test]
fn offload_units_eliminate_pipeline_energy() {
    // NS-DF regions bypass fetch/decode/rename: with 100% coverage the
    // pipeline-event counts must drop to (almost) nothing.
    let w = prism::workloads::by_name("456.hmmer").unwrap();
    let data = WorkloadData::prepare(&w.build_default()).unwrap();
    let core = CoreConfig::ooo2();
    let base = simulate_trace(&data.trace, &core);
    let Some((&lid, _)) = data.plans.ns_df.iter().next() else {
        panic!("hmmer should offload to NS-DF");
    };
    let mut a = Assignment::none();
    a.set(lid, BsaKind::NsDf);
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &a,
        &[BsaKind::NsDf],
    );
    assert!(
        run.events.core.fetches < base.events.core.fetches / 4,
        "fetches {} vs baseline {}",
        run.events.core.fetches,
        base.events.core.fetches
    );
    // But the shared cache still sees the loop's accesses.
    assert!(run.events.core.dcache_accesses * 2 >= base.events.core.dcache_accesses);
}

#[test]
fn dp_cgra_communicates_and_computes() {
    let w = prism::workloads::by_name("conv").unwrap();
    let data = WorkloadData::prepare(&w.build_default()).unwrap();
    let Some((&lid, plan)) = data.plans.dp_cgra.iter().next() else {
        panic!("conv should be CGRA-mappable");
    };
    assert!(plan.vectorized, "conv's loop is data-parallel");
    assert!(plan.offloaded.len() >= 5, "conv has a large compute slice");
    let mut a = Assignment::none();
    a.set(lid, BsaKind::DpCgra);
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &CoreConfig::ooo2(),
        &data.plans,
        &a,
        &[BsaKind::DpCgra],
    );
    assert!(run.events.accel.cgra_ops > 0);
    // Comm cannot exceed the rejected-plan bound.
    assert!(
        run.events.accel.comm_sends + run.events.accel.comm_recvs <= run.events.accel.cgra_ops,
        "communication exceeds computation: the analyzer bound leaked"
    );
}
