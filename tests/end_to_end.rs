//! Cross-crate integration tests: the full pipeline from kernel authoring
//! through tracing, IR reconstruction, BSA planning, scheduling, and
//! combined-TDG evaluation.

use prism::exocore::{amdahl_schedule, oracle_schedule, WorkloadData};
use prism::tdg::{run_exocore, Assignment, BsaKind, ExecUnit};
use prism::udg::{simulate_trace, CoreConfig};

fn prepared(name: &str) -> WorkloadData {
    let w = prism::workloads::by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
    WorkloadData::prepare(&(w.build)(w.default_n / 3 + 16)).expect(name)
}

#[test]
fn pipeline_is_deterministic() {
    let a = prepared("stencil");
    let b = prepared("stencil");
    assert_eq!(a.trace.stats, b.trace.stats);
    let core = CoreConfig::ooo2();
    let ra = simulate_trace(&a.trace, &core);
    let rb = simulate_trace(&b.trace, &core);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.events.core, rb.events.core);
    let sa = oracle_schedule(&a, &core, &BsaKind::ALL);
    let sb = oracle_schedule(&b, &core, &BsaKind::ALL);
    assert_eq!(sa.map, sb.map);
}

#[test]
fn exocore_never_loses_instructions() {
    for name in ["mm", "cjpeg-1", "tpch1", "181.mcf"] {
        let data = prepared(name);
        let core = CoreConfig::ooo2();
        let schedule = oracle_schedule(&data, &core, &BsaKind::ALL);
        let run = run_exocore(
            &data.trace,
            &data.ir,
            &core,
            &data.plans,
            &schedule,
            &BsaKind::ALL,
        );
        let covered: u64 = run.unit_insts.iter().sum();
        assert_eq!(
            covered,
            data.trace.len() as u64,
            "{name}: instructions lost"
        );
        let cycles: u64 = run.unit_cycles.iter().sum();
        assert_eq!(cycles, run.cycles, "{name}: cycle breakdown mismatch");
    }
}

#[test]
fn oracle_beats_or_matches_every_single_bsa_choice_on_ed() {
    // The Oracle (with all BSAs) must produce energy-delay at least as
    // good as restricting it to any single BSA.
    let data = prepared("cjpeg-1");
    let core = CoreConfig::ooo2();
    let table = prism::exocore::oracle_table(&data, &core);
    let full = prism::exocore::oracle_pick(&table, &data, &BsaKind::ALL);
    let full_run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &full,
        &BsaKind::ALL,
    );
    let full_ed = full_run.cycles as f64 * full_run.energy.total();
    for kind in BsaKind::ALL {
        let sub = prism::exocore::oracle_pick(&table, &data, &[kind]);
        let run = run_exocore(&data.trace, &data.ir, &core, &data.plans, &sub, &[kind]);
        let ed = run.cycles as f64 * run.energy.total();
        // Allow 10% slack: leakage of extra present accelerators can cost.
        assert!(
            full_ed <= ed * 1.10,
            "full oracle ED {full_ed:.3e} worse than {kind}-only {ed:.3e}"
        );
    }
}

#[test]
fn amdahl_schedule_runs_on_every_suite_representative() {
    for name in ["conv", "spmv", "gsmdecode", "tpch2", "473.astar"] {
        let data = prepared(name);
        let core = CoreConfig::ooo2();
        let schedule = amdahl_schedule(&data, &core, &BsaKind::ALL);
        assert!(schedule.is_well_formed(&data.ir), "{name}");
        let run = run_exocore(
            &data.trace,
            &data.ir,
            &core,
            &data.plans,
            &schedule,
            &BsaKind::ALL,
        );
        assert!(run.cycles > 0, "{name}");
    }
}

#[test]
fn accelerated_runs_preserve_total_instruction_attribution() {
    let data = prepared("mpeg2enc"); // two-phase workload
    let core = CoreConfig::ooo2();
    let schedule = oracle_schedule(&data, &core, &BsaKind::ALL);
    let run = run_exocore(
        &data.trace,
        &data.ir,
        &core,
        &data.plans,
        &schedule,
        &BsaKind::ALL,
    );
    // The two phases should use at least two distinct units (incl. GPP).
    let used = run.unit_insts.iter().filter(|&&c| c > 0).count();
    assert!(
        used >= 2,
        "expected multi-unit execution, got {:?}",
        run.unit_insts
    );
}

#[test]
fn empty_assignment_reproduces_plain_core_everywhere() {
    for name in ["fft", "458.sjeng"] {
        let data = prepared(name);
        for core in [CoreConfig::io2(), CoreConfig::ooo4()] {
            let base = simulate_trace(&data.trace, &core);
            let run = run_exocore(
                &data.trace,
                &data.ir,
                &core,
                &data.plans,
                &Assignment::none(),
                &[],
            );
            assert_eq!(base.cycles, run.cycles, "{name}/{}", core.name);
            assert_eq!(
                run.unit_insts[ExecUnit::Gpp as usize],
                data.trace.len() as u64
            );
        }
    }
}

#[test]
fn wider_cores_never_slower_across_registry_sample() {
    for name in ["conv", "needle", "164.gzip", "tpch1"] {
        let data = prepared(name);
        let io2 = simulate_trace(&data.trace, &CoreConfig::io2()).cycles;
        let ooo2 = simulate_trace(&data.trace, &CoreConfig::ooo2()).cycles;
        let ooo6 = simulate_trace(&data.trace, &CoreConfig::ooo6()).cycles;
        assert!(ooo2 <= io2 + io2 / 20, "{name}: OOO2 {ooo2} vs IO2 {io2}");
        assert!(
            ooo6 <= ooo2 + ooo2 / 20,
            "{name}: OOO6 {ooo6} vs OOO2 {ooo2}"
        );
    }
}

#[test]
fn energy_increases_with_core_size_on_identical_work() {
    let data = prepared("lbm");
    let e2 = simulate_trace(&data.trace, &CoreConfig::ooo2())
        .energy
        .total();
    let e6 = simulate_trace(&data.trace, &CoreConfig::ooo6())
        .energy
        .total();
    // The 6-wide core does the same work with costlier structures; energy
    // per run can drop only via leakage×time, which the speedup rarely
    // fully offsets in this model.
    assert!(
        e6 > 0.8 * e2,
        "OOO6 energy {e6} implausibly low vs OOO2 {e2}"
    );
}
